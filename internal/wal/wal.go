// Package wal is the durability subsystem of the serving stack: a
// segmented, CRC32C-framed write-ahead log plus epoch checkpoints over
// the index store's immutable snapshots, and the crash recovery that
// rebuilds a store from them.
//
// The write path rides the store's existing batch pipeline: every
// index.Store.Apply batch is encoded (reusing index.Mutation) and
// appended — with a policy-dependent fsync — after the batch mutated the
// copy-on-write branch but before the snapshot is published, so no caller
// ever observes an epoch the log does not cover. Only object churn is
// logged; session location updates are soft state and cost nothing here.
//
// Checkpoints exploit the epoch-versioned snapshot store: a checkpoint
// pins the current immutable snapshot, serializes its logical state
// (live objects ascending by id, the next id to assign, the network site
// set) off the hot path, publishes it atomically (tmp + rename + dir
// fsync), and prunes WAL segments every retained checkpoint covers.
//
// Recovery is deterministic replay: load the newest valid checkpoint,
// rebuild the store so it answers — and keeps assigning ids — exactly as
// the instance that wrote it (vortree.Restore burns removed ids), then
// re-apply the WAL tail through Store.Apply, truncating at the first torn
// or corrupt frame. The recovered store is byte-for-byte equivalent in
// every query answer to one that never crashed.
package wal

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/obs"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy string

const (
	// SyncAlways fsyncs before an append returns (group-committed: every
	// appender blocked on the same generation shares one fsync). No
	// acknowledged batch is ever lost.
	SyncAlways SyncPolicy = "always"
	// SyncInterval fsyncs on a fixed cadence (Options.SyncEvery); a crash
	// loses at most the last tick's batches. The recommended serving
	// policy.
	SyncInterval SyncPolicy = "interval"
	// SyncOff never fsyncs on the append path (only on segment rotation
	// and Close); the OS decides when records reach disk.
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy parses a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncInterval, SyncOff:
		return SyncPolicy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (want always, interval or off)", s)
}

// Defaults for the zero fields of Options.
const (
	DefaultSyncEvery       = 2 * time.Millisecond
	DefaultSegmentBytes    = 64 << 20
	DefaultCheckpointEvery = 4096
	DefaultKeepCheckpoints = 2
	DefaultDegradeAfter    = 3
	DefaultProbeEvery      = 250 * time.Millisecond
)

// ErrDegraded fail-fasts appends while the manager is in degraded mode:
// the log is unavailable, writes are rejected until the heal probe
// restores durability. Reads are unaffected — degraded mode exists so
// the serving side can keep answering queries while the disk is sick.
var ErrDegraded = errors.New("wal: degraded: durability unavailable")

// Options parameterizes Open.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// Sync is the fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (default DefaultSyncEvery).
	SyncEvery time.Duration
	// SegmentBytes rotates segments past this size (default
	// DefaultSegmentBytes).
	SegmentBytes int64
	// CheckpointEvery takes a checkpoint every this many epochs (default
	// DefaultCheckpointEvery).
	CheckpointEvery uint64
	// KeepCheckpoints retains this many newest checkpoints (default
	// DefaultKeepCheckpoints); WAL segments are pruned only past the
	// oldest retained one.
	KeepCheckpoints int
	// Obs, when non-nil, times appends and fsyncs (wal_append / fsync
	// stages), reports slow fsyncs, and registers WAL gauges (segment
	// bytes, checkpoint age) on its registry.
	Obs *obs.Pipeline
	// DegradeAfter flips the manager into degraded read-only mode after
	// this many consecutive append failures (default DefaultDegradeAfter).
	// A sticky log error (a failed fsync kills the log) degrades
	// immediately regardless of the count.
	DegradeAfter int
	// ProbeEvery is the degraded-mode heal cadence (default
	// DefaultProbeEvery): each tick the probe checkpoints the current
	// snapshot and rebuilds the log on a fresh segment; if both succeed —
	// the disk accepts writes again — degraded mode ends.
	ProbeEvery time.Duration
	// Logger receives degrade/heal transitions (default slog.Default()).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Sync == "" {
		o.Sync = SyncInterval
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = DefaultKeepCheckpoints
	}
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = DefaultDegradeAfter
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = DefaultProbeEvery
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Stats is a point-in-time snapshot of the durability counters.
type Stats struct {
	// Policy is the active fsync policy.
	Policy SyncPolicy
	// AppendedBatches / AppendedMutations / AppendedBytes count the WAL
	// appends since Open (bytes include frame headers).
	AppendedBatches   uint64
	AppendedMutations uint64
	AppendedBytes     uint64
	// Fsyncs counts fsyncs of segment files; FsyncTotal is the wall time
	// inside them (flush + fsync).
	Fsyncs     uint64
	FsyncTotal time.Duration
	// Segments is the live segment-file count; PrunedSegments counts
	// segments deleted by checkpointing.
	Segments       int
	PrunedSegments uint64
	// Checkpoints counts checkpoints written since Open; CheckpointEpoch
	// and CheckpointBytes describe the newest one (the epoch also counts
	// checkpoints inherited from a previous run). CheckpointFailures
	// counts background checkpoint attempts that errored.
	Checkpoints        uint64
	CheckpointEpoch    uint64
	CheckpointBytes    uint64
	CheckpointFailures uint64
	// ReplayedBatches / ReplayedMutations count the WAL records recovery
	// re-applied on top of the checkpoint; TruncatedBytes is what the torn
	// tail (and everything after it) cost; RecoveredEpoch is the epoch the
	// store resumed at; Recovery is the wall time of the whole boot path
	// (checkpoint load + rebuild + replay).
	ReplayedBatches   uint64
	ReplayedMutations uint64
	TruncatedBytes    int64
	RecoveredEpoch    uint64
	Recovery          time.Duration
	// Degraded reports whether the manager is currently in degraded
	// read-only mode; DegradeEvents / HealEvents count the round trips.
	Degraded      bool
	DegradeEvents uint64
	HealEvents    uint64
}

// Manager owns the durability pipeline of one store: it is the store's
// Durability hook on the write path, the background checkpointer, and the
// recovery bootstrapper. Open builds the store; the caller serves from
// Store() and must Close the manager BEFORE closing the store/engine, so
// the final checkpoint can still pin a snapshot.
type Manager struct {
	opts  Options
	store *index.Store
	log   *segLog
	buf   []byte // append-encoding scratch; Apply serializes AppendBatch

	appendedBatches atomic.Uint64
	appendedMuts    atomic.Uint64
	appendedBytes   atomic.Uint64
	lastEpoch       atomic.Uint64 // newest appended epoch
	ckpts           atomic.Uint64
	ckptEpoch       atomic.Uint64
	ckptBytes       atomic.Uint64
	ckptFails       atomic.Uint64
	haveCkpt        atomic.Bool

	// Recovery facts, written once in Open.
	replayBatches  uint64
	replayMuts     uint64
	truncBytes     int64
	recoveredEpoch uint64
	recovery       time.Duration

	// Degraded mode. degraded is only set from AppendBatch's error path
	// (serialized under the store's mutation lock) and only cleared by the
	// heal probe; while it is set both the engine and AppendBatch itself
	// fail-fast writes, so no append can interleave with a heal.
	degraded      atomic.Bool
	consecFails   atomic.Int64
	degradeEvents atomic.Uint64
	healEvents    atomic.Uint64

	ckptMu    sync.Mutex // serializes checkpointNow
	ckptCh    chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open recovers (or initializes) the data directory and returns a manager
// whose store is ready to serve: newest valid checkpoint loaded, WAL tail
// replayed, torn tail truncated, log reopened for appending, and the
// durability hook attached — batches applied from here on are logged
// before they publish. A directory with no checkpoint is initialized from
// cfg's seed state and immediately checkpointed, so the directory is
// self-contained from the first boot (cfg.Objects/NetworkSites are
// ignored on every later one). cfg.Restore must be nil; Bounds and
// Network must match what the directory was created with.
func Open(cfg index.Config, opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if cfg.Restore != nil {
		return nil, errors.New("wal: cfg.Restore is owned by Open")
	}
	opts = opts.withDefaults()
	if _, err := ParseSyncPolicy(string(opts.Sync)); err != nil {
		return nil, err
	}
	start := time.Now()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	os.Remove(filepath.Join(opts.Dir, ckptTmpName)) // stray tmp of a crashed checkpoint

	m := &Manager{opts: opts, ckptCh: make(chan struct{}, 1), done: make(chan struct{})}
	ck, ckBytes, err := loadNewestCheckpoint(opts.Dir)
	if err != nil {
		return nil, err
	}
	if ck != nil {
		if ck.bounds != cfg.Bounds {
			return nil, fmt.Errorf("wal: data dir bounds %v do not match configured bounds %v", ck.bounds, cfg.Bounds)
		}
		if ck.hasNet != (cfg.Network != nil) {
			return nil, fmt.Errorf("wal: data dir network side (%t) does not match configuration (%t)", ck.hasNet, cfg.Network != nil)
		}
		cfg.Restore = &index.Restore{
			Epoch:    ck.epoch,
			HasPlane: ck.hasPlane,
			Plane:    ck.objs,
			NextID:   ck.nextID,
			Sites:    ck.sites,
		}
		m.ckptEpoch.Store(ck.epoch)
		m.ckptBytes.Store(uint64(ckBytes))
		m.haveCkpt.Store(true)
	}
	st, err := index.NewStore(cfg)
	if err != nil {
		return nil, err
	}
	m.store = st
	segs, err := scanSegments(opts.Dir)
	if err != nil {
		st.Close()
		return nil, err
	}
	res, err := replaySegments(segs, func(first uint64, muts []index.Mutation) error {
		cur := st.Epoch()
		last := first + uint64(len(muts)) - 1
		if last <= cur {
			return nil // fully covered by the checkpoint
		}
		if first != cur+1 {
			return fmt.Errorf("wal: replay gap: record covers epochs %d..%d but the store is at %d", first, last, cur)
		}
		if _, aerr := st.Apply(muts); aerr != nil {
			return fmt.Errorf("wal: replay epoch %d: %w", first, aerr)
		}
		m.replayBatches++
		m.replayMuts += uint64(len(muts))
		return nil
	})
	if err != nil {
		st.Close()
		return nil, err
	}
	m.truncBytes = res.truncatedBytes
	lg, err := openSegLog(opts.Dir, res.segs, st.Epoch()+1, opts.Sync, opts.SyncEvery, opts.SegmentBytes, opts.Obs)
	if err != nil {
		st.Close()
		return nil, err
	}
	m.log = lg
	m.lastEpoch.Store(st.Epoch())
	m.recoveredEpoch = st.Epoch()
	if ck == nil {
		// First boot of this directory: make it self-contained before any
		// traffic, so a restart never depends on cfg reproducing the seed.
		if err := m.checkpointNow(); err != nil {
			lg.Close()
			st.Close()
			return nil, err
		}
	}
	st.SetDurability(m)
	m.registerMetrics(opts.Obs.Registry())
	m.wg.Add(2)
	go m.checkpointLoop()
	go m.probeLoop()
	m.recovery = time.Since(start)
	return m, nil
}

// registerMetrics exports the durability gauges the next PRs (scale-out,
// backpressure) watch: log size, checkpoint age, append and fsync
// volume. All read existing atomics; a scrape never touches the log lock
// except for the segment size, which takes it briefly.
func (m *Manager) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("insq_wal_segments",
		"Live WAL segment files.",
		func() float64 { _, _, segments, _ := m.log.statsSnapshot(); return float64(segments) })
	reg.GaugeFunc("insq_wal_segment_bytes",
		"Bytes in the open WAL segment (rotates at the segment cap).",
		func() float64 { return float64(m.log.sizeBytes()) })
	reg.GaugeFunc("insq_wal_checkpoint_age_epochs",
		"Epochs appended since the newest checkpoint.",
		func() float64 {
			last, ck := m.lastEpoch.Load(), m.ckptEpoch.Load()
			if last <= ck {
				return 0
			}
			return float64(last - ck)
		})
	reg.CounterFunc("insq_wal_appended_batches_total",
		"Batches appended to the WAL.",
		func() float64 { return float64(m.appendedBatches.Load()) })
	reg.CounterFunc("insq_wal_appended_bytes_total",
		"Bytes appended to the WAL (frame headers included).",
		func() float64 { return float64(m.appendedBytes.Load()) })
	reg.CounterFunc("insq_wal_fsyncs_total",
		"Fsyncs of WAL segment files.",
		func() float64 { fsyncs, _, _, _ := m.log.statsSnapshot(); return float64(fsyncs) })
	reg.CounterFunc("insq_wal_checkpoints_total",
		"Checkpoints written since open.",
		func() float64 { return float64(m.ckpts.Load()) })
	reg.CounterFunc("insq_wal_degrade_events_total",
		"Times the durability layer entered degraded read-only mode.",
		func() float64 { return float64(m.degradeEvents.Load()) })
	reg.CounterFunc("insq_wal_heal_events_total",
		"Times the heal probe restored durability after degraded mode.",
		func() float64 { return float64(m.healEvents.Load()) })
}

// Store returns the recovered (or freshly initialized) store the manager
// logs for. The caller owns its lifecycle; close the manager first.
func (m *Manager) Store() *index.Store { return m.store }

// AppendBatch implements index.Durability: it runs inside Store.Apply,
// after the batch mutated the branch and before the snapshot publishes.
// While the manager is degraded it fail-fasts with ErrDegraded; append
// failures count toward the degrade threshold (a sticky log error
// degrades immediately).
func (m *Manager) AppendBatch(ctx context.Context, firstEpoch uint64, muts []index.Mutation) error {
	if m.degraded.Load() {
		return ErrDegraded
	}
	o := m.opts.Obs
	var start time.Time
	if o.Enabled() {
		start = time.Now()
	}
	// wal.append.err: the append fails before anything reaches the log.
	if err := fault.WALAppendErr.Fire(); err != nil {
		m.noteAppendError()
		return err
	}
	m.buf = appendBatchRecord(m.buf[:0], firstEpoch, muts)
	if err := m.log.Append(firstEpoch, m.buf); err != nil {
		m.noteAppendError()
		return err
	}
	m.consecFails.Store(0)
	if o.Enabled() {
		d := time.Since(start)
		o.Observe(obs.StageWALAppend, d)
		if m.opts.Sync == SyncAlways {
			// Under the always policy the append wait IS the group-commit
			// fsync, and it is the only fsync that can carry the request's
			// trace — the background loop's own timing has no request.
			o.SlowFsync(obs.TraceID(ctx), d)
		}
	}
	m.appendedBatches.Add(1)
	m.appendedMuts.Add(uint64(len(muts)))
	m.appendedBytes.Add(uint64(len(m.buf) + frameHdrLen))
	last := firstEpoch + uint64(len(muts)) - 1
	m.lastEpoch.Store(last)
	if last-m.ckptEpoch.Load() >= m.opts.CheckpointEvery {
		select {
		case m.ckptCh <- struct{}{}:
		default: // one already pending
		}
	}
	return nil
}

// noteAppendError counts a durability-append failure and enters degraded
// mode when the failures are persistent: either the log took a sticky
// I/O error (it cannot accept another byte) or DegradeAfter consecutive
// appends failed (transient errors like ENOSPC that keep happening).
func (m *Manager) noteAppendError() {
	n := m.consecFails.Add(1)
	if m.log.dead() || n >= int64(m.opts.DegradeAfter) {
		if m.degraded.CompareAndSwap(false, true) {
			m.degradeEvents.Add(1)
			m.opts.Logger.Warn("wal: entering degraded mode: writes rejected until the disk heals",
				"consecutive_failures", n, "log_dead", m.log.dead())
		}
	}
}

// Degraded reports whether the manager is in degraded read-only mode.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// probeLoop drives the degraded-mode heal: every ProbeEvery tick while
// degraded, try to restore durability and clear the flag.
func (m *Manager) probeLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.opts.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			if m.degraded.Load() {
				m.tryHeal()
			}
		}
	}
}

// tryHeal attempts to restore durability. Checkpoint first: writing a
// checkpoint at the current published epoch both proves the disk accepts
// writes again and makes everything the old log held (including any torn
// tail the failure left behind) redundant, so the log can then be rebuilt
// from scratch on a fresh segment. Only when both steps succeed does
// degraded mode end; any failure leaves it set for the next tick.
//
// Safety: while degraded, AppendBatch fail-fasts (and the engine rejects
// mutations before Apply), so no append touches the log during the
// rebuild and the published epoch cannot move under the checkpoint.
func (m *Manager) tryHeal() {
	s := m.store.Acquire()
	if s == nil {
		return // store closed; shutdown is racing us
	}
	epoch := s.Epoch()
	s.Release()
	if err := m.checkpointNow(); err != nil {
		m.ckptFails.Add(1)
		m.opts.Logger.Warn("wal: heal probe: checkpoint failed", "err", err)
		return
	}
	if err := m.log.reset(epoch + 1); err != nil {
		m.opts.Logger.Warn("wal: heal probe: log rebuild failed", "err", err)
		return
	}
	m.consecFails.Store(0)
	m.degraded.Store(false)
	m.healEvents.Add(1)
	m.opts.Logger.Info("wal: healed: durability restored, writes re-enabled",
		"epoch", epoch)
}

// checkpointLoop runs checkpoints off the hot path; AppendBatch nudges it
// whenever the WAL grows CheckpointEvery epochs past the newest
// checkpoint.
func (m *Manager) checkpointLoop() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		case <-m.ckptCh:
			if err := m.checkpointNow(); err != nil {
				m.ckptFails.Add(1)
			}
		}
	}
}

// Checkpoint takes a checkpoint of the current snapshot now, bypassing
// the CheckpointEvery cadence.
func (m *Manager) Checkpoint() error { return m.checkpointNow() }

// checkpointNow pins the current snapshot, serializes it, publishes the
// checkpoint atomically and prunes WAL segments and old checkpoints. It
// is a no-op when no epoch was applied since the newest checkpoint, and
// when the store is already closed (nothing can be pinned; the WAL alone
// still recovers the tail).
func (m *Manager) checkpointNow() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	s := m.store.Acquire()
	if s == nil {
		return nil
	}
	defer s.Release()
	epoch := s.Epoch()
	if m.haveCkpt.Load() && epoch <= m.ckptEpoch.Load() {
		return nil
	}
	objs, nextID := s.PlaneObjects()
	payload := encodeCheckpoint(ckptState{
		epoch:    epoch,
		bounds:   m.store.Bounds(),
		hasPlane: s.Plane() != nil,
		objs:     objs,
		nextID:   nextID,
		hasNet:   s.Network() != nil,
		sites:    s.NetworkSites(),
	})
	n, err := writeCheckpoint(m.opts.Dir, epoch, payload)
	if err != nil {
		return err
	}
	m.ckpts.Add(1)
	m.ckptEpoch.Store(epoch)
	m.ckptBytes.Store(uint64(n))
	m.haveCkpt.Store(true)
	oldest, err := pruneCheckpoints(m.opts.Dir, m.opts.KeepCheckpoints)
	if err != nil {
		return err
	}
	return m.log.pruneTo(oldest)
}

// Stats returns a point-in-time snapshot of the durability counters.
func (m *Manager) Stats() Stats {
	fsyncs, fsyncNS, segments, pruned := m.log.statsSnapshot()
	return Stats{
		Policy:             m.opts.Sync,
		AppendedBatches:    m.appendedBatches.Load(),
		AppendedMutations:  m.appendedMuts.Load(),
		AppendedBytes:      m.appendedBytes.Load(),
		Fsyncs:             fsyncs,
		FsyncTotal:         time.Duration(fsyncNS),
		Segments:           segments,
		PrunedSegments:     pruned,
		Checkpoints:        m.ckpts.Load(),
		CheckpointEpoch:    m.ckptEpoch.Load(),
		CheckpointBytes:    m.ckptBytes.Load(),
		CheckpointFailures: m.ckptFails.Load(),
		ReplayedBatches:    m.replayBatches,
		ReplayedMutations:  m.replayMuts,
		TruncatedBytes:     m.truncBytes,
		RecoveredEpoch:     m.recoveredEpoch,
		Recovery:           m.recovery,
		Degraded:           m.degraded.Load(),
		DegradeEvents:      m.degradeEvents.Load(),
		HealEvents:         m.healEvents.Load(),
	}
}

// Close takes a final checkpoint (while the store is still open), makes
// the log durable and closes it. Call before closing the store/engine.
// Close is idempotent.
func (m *Manager) Close() error {
	m.closeOnce.Do(func() {
		close(m.done)
		m.wg.Wait()
		var errs []error
		if err := m.checkpointNow(); err != nil {
			errs = append(errs, err)
		}
		if err := m.log.Close(); err != nil {
			errs = append(errs, err)
		}
		m.closeErr = errors.Join(errs...)
	})
	return m.closeErr
}
