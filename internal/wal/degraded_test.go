package wal

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/index"
)

// TestManagerDegradesAndHeals drives the full degradation ladder at the
// WAL layer: a persistent injected fsync failure flips the manager into
// degraded mode (appends fail fast with ErrDegraded, reads keep
// serving), disarming the fault lets the background probe heal it
// (checkpoint + fresh log), writes resume, and a subsequent crash and
// cold reopen recovers a store equal to a mutation-for-mutation
// reference — proving the heal path lost nothing.
func TestManagerDegradesAndHeals(t *testing.T) {
	defer fault.DisarmAll()
	dir := t.TempDir()
	cfg := testConfig(t)
	ref, _ := reference(t, cfg)
	defer ref.Close()

	mgr, err := Open(cfg, Options{
		Dir:          dir,
		Sync:         SyncAlways,
		DegradeAfter: 2,
		ProbeEvery:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := mgr.Store()

	// applyBoth-style helper for single plane inserts: a successful apply
	// is mirrored into the reference (failed applies discard the branch,
	// so ids and epochs stay aligned).
	insertBoth := func(p geom.Point) error {
		if _, err := st.Insert(p); err != nil {
			return err
		}
		if _, err := ref.Insert(p); err != nil {
			t.Fatalf("reference insert diverged: %v", err)
		}
		return nil
	}

	for i := 0; i < 5; i++ {
		if err := insertBoth(geom.Pt(float64(10+i), 10)); err != nil {
			t.Fatalf("healthy insert %d: %v", i, err)
		}
	}

	// Arm a persistent fsync failure: the very first append goes sticky
	// (the group-commit syncer records the error), so the manager must
	// flip degraded within DegradeAfter attempts.
	fault.WALFsyncErr.Arm(fault.Spec{})
	var lastErr error
	for i := 0; i < 4 && !mgr.Degraded(); i++ {
		if _, err := st.Insert(geom.Pt(float64(100+i), 100)); err != nil {
			lastErr = err
		} else {
			t.Fatal("insert succeeded with wal.fsync.err armed")
		}
	}
	if !mgr.Degraded() {
		t.Fatalf("manager not degraded after repeated fsync failures (last: %v)", lastErr)
	}
	if st.Epoch() != ref.Epoch() {
		t.Fatalf("failed appends advanced the epoch: %d vs reference %d", st.Epoch(), ref.Epoch())
	}

	// Degraded fail-fast: the append is rejected before touching the log.
	_, err = st.Insert(geom.Pt(200, 200))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded insert error = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, index.ErrDurability) {
		t.Fatalf("degraded insert error = %v, want index.ErrDurability wrap", err)
	}

	// Reads keep serving while degraded.
	snap := st.Acquire()
	if snap == nil {
		t.Fatal("Acquire returned nil while degraded")
	}
	snap.Release()

	// The probe must NOT heal while the disk is still broken: the heal's
	// own fsync re-fires the failpoint.
	time.Sleep(25 * time.Millisecond)
	if !mgr.Degraded() {
		t.Fatal("manager healed while wal.fsync.err was still armed")
	}

	// Disarm ("replace the disk") and wait for the probe to heal.
	fault.WALFsyncErr.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("manager never healed after the fault was disarmed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		if err := insertBoth(geom.Pt(float64(300+i), 300)); err != nil {
			t.Fatalf("post-heal insert %d: %v", i, err)
		}
	}

	ws := mgr.Stats()
	if ws.DegradeEvents == 0 || ws.HealEvents == 0 {
		t.Fatalf("stats: degrade=%d heal=%d, want both > 0", ws.DegradeEvents, ws.HealEvents)
	}
	if ws.Degraded {
		t.Fatal("stats still report degraded after heal")
	}

	// Crash (no Close, fsync=always) and reopen: recovery must land on
	// exactly the reference — the degrade/heal cycle lost no acknowledged
	// write and replays no rejected one.
	assertStoresEqual(t, "before crash", st, ref)
	st.Close()

	mgr2, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr2.Close(); mgr2.Store().Close() }()
	assertStoresEqual(t, "after crash", mgr2.Store(), ref)
}

// TestDegradedManagerClosesCleanly makes sure Close works from inside
// degraded mode (sticky log error, probe goroutine live).
func TestDegradedManagerClosesCleanly(t *testing.T) {
	defer fault.DisarmAll()
	dir := t.TempDir()
	cfg := testConfig(t)

	mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways, DegradeAfter: 1, ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fault.WALFsyncErr.Arm(fault.Spec{})
	if _, err := mgr.Store().Insert(geom.Pt(1, 1)); err == nil {
		t.Fatal("insert succeeded with wal.fsync.err armed")
	}
	if !mgr.Degraded() {
		t.Fatal("manager not degraded with DegradeAfter=1")
	}
	fault.WALFsyncErr.Disarm()
	// Close with the log still sticky: the final checkpoint may fail but
	// Close must return (no deadlock on the dead syncer).
	mgr.Close()
	mgr.Store().Close()
}

// TestCloseDuringInFlightIntervalFsync races Close against a background
// interval fsync stretched by the wal.fsync.delay failpoint: Close must
// join the sync loop before its own final fsync (no double-fsync of a
// closed file, no race on the segment handle), and a reopen must see a
// consistent log. Run with -race to make the ordering claim meaningful.
func TestCloseDuringInFlightIntervalFsync(t *testing.T) {
	defer fault.DisarmAll()
	cfg := testConfig(t)
	for i := 0; i < 5; i++ {
		dir := t.TempDir()
		mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncInterval, SyncEvery: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Store().Insert(geom.Pt(float64(i)+1, 5)); err != nil {
			t.Fatal(err)
		}
		// Stretch the next background fsync so Close lands mid-flight.
		fault.WALFsyncDelay.Arm(fault.Spec{Delay: 10 * time.Millisecond})
		if _, err := mgr.Store().Insert(geom.Pt(float64(i)+1, 6)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // ticker fires, syncer sleeps inside the failpoint
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mgr.Close(); err != nil {
				t.Errorf("close during in-flight fsync: %v", err)
			}
		}()
		wg.Wait()
		mgr.Store().Close()
		fault.WALFsyncDelay.Disarm()

		mgr2, err := Open(cfg, Options{Dir: dir, Sync: SyncInterval})
		if err != nil {
			t.Fatalf("reopen after racing close: %v", err)
		}
		if got := mgr2.Stats().RecoveredEpoch; got == 0 {
			t.Fatal("reopen recovered nothing")
		}
		mgr2.Close()
		mgr2.Store().Close()
	}
}
