package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/vortree"
)

// Record kinds. The first payload byte of every WAL frame selects the
// decoder, so future record kinds can ride alongside batches without a
// format bump.
const recordBatch = 1

// Mutation flag bits of the batch record encoding.
const (
	mutInsert  = 1 << 0
	mutNetwork = 1 << 1
)

// Checkpoint flag bits.
const (
	ckptHasPlane   = 1 << 0
	ckptHasNetwork = 1 << 1
)

// errTruncatedRecord marks a payload that ends mid-field. It can only be
// produced by a CRC-valid frame, so it is a hard corruption (or version
// skew) signal, never a torn tail.
var errTruncatedRecord = errors.New("wal: truncated record payload")

// appendBatchRecord encodes one applied mutation batch covering epochs
// firstEpoch .. firstEpoch+len(muts)-1. The encoding is positional, not
// self-describing: a flags byte per mutation, then the one field the
// mutation kind needs — coordinates for plane inserts, the object/vertex
// id for everything else (plane removals name an id; network mutations
// name their vertex for both directions).
func appendBatchRecord(dst []byte, firstEpoch uint64, muts []index.Mutation) []byte {
	dst = append(dst, recordBatch)
	dst = binary.AppendUvarint(dst, firstEpoch)
	dst = binary.AppendUvarint(dst, uint64(len(muts)))
	for _, m := range muts {
		var flags byte
		if m.Insert {
			flags |= mutInsert
		}
		if m.Network {
			flags |= mutNetwork
		}
		dst = append(dst, flags)
		if !m.Network && m.Insert {
			dst = appendFloat(dst, m.P.X)
			dst = appendFloat(dst, m.P.Y)
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(m.ID))
	}
	return dst
}

// decodeBatchRecord is the inverse of appendBatchRecord.
func decodeBatchRecord(p []byte) (firstEpoch uint64, muts []index.Mutation, err error) {
	if len(p) == 0 {
		return 0, nil, errTruncatedRecord
	}
	if p[0] != recordBatch {
		return 0, nil, fmt.Errorf("wal: unknown record kind %d", p[0])
	}
	p = p[1:]
	if firstEpoch, p, err = readUvarint(p); err != nil {
		return 0, nil, err
	}
	var n uint64
	if n, p, err = readUvarint(p); err != nil {
		return 0, nil, err
	}
	if n == 0 || n > uint64(len(p)) {
		// Every mutation takes at least two bytes; a count beyond the
		// remaining payload is corruption, not a huge batch.
		return 0, nil, errTruncatedRecord
	}
	muts = make([]index.Mutation, n)
	for i := range muts {
		if len(p) == 0 {
			return 0, nil, errTruncatedRecord
		}
		flags := p[0]
		p = p[1:]
		m := index.Mutation{Insert: flags&mutInsert != 0, Network: flags&mutNetwork != 0}
		if !m.Network && m.Insert {
			if m.P.X, p, err = readFloat(p); err != nil {
				return 0, nil, err
			}
			if m.P.Y, p, err = readFloat(p); err != nil {
				return 0, nil, err
			}
		} else {
			var id uint64
			if id, p, err = readUvarint(p); err != nil {
				return 0, nil, err
			}
			m.ID = int(id)
		}
		muts[i] = m
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("wal: %d trailing bytes after batch record", len(p))
	}
	return firstEpoch, muts, nil
}

// ckptState is a decoded checkpoint: the logical store state a restored
// instance republishes before WAL replay. bounds rides along purely as a
// configuration check — a data dir must not be opened under a different
// data space, or replayed coordinates would silently land in the wrong
// geometry.
type ckptState struct {
	epoch    uint64
	bounds   geom.Rect
	hasPlane bool
	objs     []vortree.RestoreObject
	nextID   int
	hasNet   bool
	sites    []int
}

// encodeCheckpoint serializes one checkpoint payload (the CRC and file
// magic are the writer's concern).
func encodeCheckpoint(st ckptState) []byte {
	dst := make([]byte, 0, 64+24*len(st.objs)+4*len(st.sites))
	dst = binary.AppendUvarint(dst, st.epoch)
	var flags byte
	if st.hasPlane {
		flags |= ckptHasPlane
	}
	if st.hasNet {
		flags |= ckptHasNetwork
	}
	dst = append(dst, flags)
	dst = appendFloat(dst, st.bounds.Min.X)
	dst = appendFloat(dst, st.bounds.Min.Y)
	dst = appendFloat(dst, st.bounds.Max.X)
	dst = appendFloat(dst, st.bounds.Max.Y)
	if st.hasPlane {
		dst = binary.AppendUvarint(dst, uint64(st.nextID))
		dst = binary.AppendUvarint(dst, uint64(len(st.objs)))
		for _, o := range st.objs {
			dst = binary.AppendUvarint(dst, uint64(o.ID))
			dst = appendFloat(dst, o.P.X)
			dst = appendFloat(dst, o.P.Y)
		}
	}
	if st.hasNet {
		dst = binary.AppendUvarint(dst, uint64(len(st.sites)))
		for _, v := range st.sites {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
	}
	return dst
}

// decodeCheckpoint is the inverse of encodeCheckpoint.
func decodeCheckpoint(p []byte) (st ckptState, err error) {
	if st.epoch, p, err = readUvarint(p); err != nil {
		return ckptState{}, err
	}
	if len(p) == 0 {
		return ckptState{}, errTruncatedRecord
	}
	flags := p[0]
	p = p[1:]
	st.hasPlane = flags&ckptHasPlane != 0
	st.hasNet = flags&ckptHasNetwork != 0
	if st.bounds.Min.X, p, err = readFloat(p); err != nil {
		return ckptState{}, err
	}
	if st.bounds.Min.Y, p, err = readFloat(p); err != nil {
		return ckptState{}, err
	}
	if st.bounds.Max.X, p, err = readFloat(p); err != nil {
		return ckptState{}, err
	}
	if st.bounds.Max.Y, p, err = readFloat(p); err != nil {
		return ckptState{}, err
	}
	if st.hasPlane {
		var nextID, n uint64
		if nextID, p, err = readUvarint(p); err != nil {
			return ckptState{}, err
		}
		if n, p, err = readUvarint(p); err != nil {
			return ckptState{}, err
		}
		if n > uint64(len(p)) { // >= 1 byte per object
			return ckptState{}, errTruncatedRecord
		}
		st.nextID = int(nextID)
		st.objs = make([]vortree.RestoreObject, n)
		for i := range st.objs {
			var id uint64
			if id, p, err = readUvarint(p); err != nil {
				return ckptState{}, err
			}
			st.objs[i].ID = int(id)
			if st.objs[i].P.X, p, err = readFloat(p); err != nil {
				return ckptState{}, err
			}
			if st.objs[i].P.Y, p, err = readFloat(p); err != nil {
				return ckptState{}, err
			}
		}
	}
	if st.hasNet {
		var n uint64
		if n, p, err = readUvarint(p); err != nil {
			return ckptState{}, err
		}
		if n > uint64(len(p)) {
			return ckptState{}, errTruncatedRecord
		}
		st.sites = make([]int, n)
		for i := range st.sites {
			var v uint64
			if v, p, err = readUvarint(p); err != nil {
				return ckptState{}, err
			}
			st.sites[i] = int(v)
		}
	}
	if len(p) != 0 {
		return ckptState{}, fmt.Errorf("wal: %d trailing bytes after checkpoint", len(p))
	}
	return st, nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func readFloat(p []byte) (float64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, errTruncatedRecord
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(p)), p[8:], nil
}

func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errTruncatedRecord
	}
	return v, p[n:], nil
}
