package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint files are ckpt-%016x.ckpt (named by epoch): an 8-byte magic,
// the encodeCheckpoint payload, then a CRC32C of the payload. They are
// written to a temp file, fsynced, renamed into place and the directory
// fsynced — a crash leaves either the old set or the old set plus one new
// valid file, never a half-written checkpoint under a valid name.
const (
	ckptMagic   = "INSQCKP1"
	ckptTmpName = "ckpt.tmp"
)

func checkpointPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%016x.ckpt", epoch))
}

// writeCheckpoint durably publishes one checkpoint and returns its file
// size.
func writeCheckpoint(dir string, epoch uint64, payload []byte) (int64, error) {
	tmp := filepath.Join(dir, ckptTmpName)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, crcTable))
	_, err = f.WriteString(ckptMagic)
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		_, err = f.Write(crc[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, checkpointPath(dir, epoch)); err != nil {
		return 0, fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("wal: checkpoint: %w", err)
	}
	return int64(len(ckptMagic) + len(payload) + len(crc)), nil
}

// ckptInfo is one checkpoint file found by a directory scan.
type ckptInfo struct {
	epoch uint64
	path  string
}

// scanCheckpoints lists checkpoint files descending by epoch (newest
// first). Foreign files are ignored.
func scanCheckpoints(dir string) ([]ckptInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan checkpoints: %w", err)
	}
	var cks []ckptInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		hexa := strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), ".ckpt")
		epoch, perr := strconv.ParseUint(hexa, 16, 64)
		if perr != nil || len(hexa) != 16 {
			continue
		}
		cks = append(cks, ckptInfo{epoch: epoch, path: filepath.Join(dir, name)})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].epoch > cks[j].epoch })
	return cks, nil
}

// loadNewestCheckpoint returns the newest checkpoint that validates
// (magic + CRC + decode), falling back to older ones past any that do
// not; it returns a nil state when the directory holds no usable
// checkpoint. Invalid files are left in place — recovery must never
// destroy evidence it did not have to.
func loadNewestCheckpoint(dir string) (*ckptState, int64, error) {
	cks, err := scanCheckpoints(dir)
	if err != nil {
		return nil, 0, err
	}
	for _, ck := range cks {
		data, rerr := os.ReadFile(ck.path)
		if rerr != nil {
			continue
		}
		if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
			continue
		}
		payload := data[len(ckptMagic) : len(data)-4]
		crc := binary.LittleEndian.Uint32(data[len(data)-4:])
		if crc32.Checksum(payload, crcTable) != crc {
			continue
		}
		st, derr := decodeCheckpoint(payload)
		if derr != nil {
			continue
		}
		if st.epoch != ck.epoch {
			continue // payload does not match its file name: distrust it
		}
		return &st, int64(len(data)), nil
	}
	return nil, 0, nil
}

// pruneCheckpoints removes all but the keep newest checkpoint files and
// returns the oldest retained epoch. WAL segments are pruned only up to
// that epoch (not the newest checkpoint's): if the newest checkpoint
// turns out unreadable on the next boot, the older one plus the retained
// segments still replays to the exact same state.
func pruneCheckpoints(dir string, keep int) (oldestRetained uint64, err error) {
	cks, err := scanCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	if len(cks) == 0 {
		return 0, nil
	}
	if keep > len(cks) {
		keep = len(cks)
	}
	for i := keep; i < len(cks); i++ {
		if err := os.Remove(cks[i].path); err != nil {
			return 0, fmt.Errorf("wal: prune checkpoint: %w", err)
		}
	}
	return cks[keep-1].epoch, nil
}
