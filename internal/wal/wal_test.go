package wal

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/roadnet"
	"repro/internal/workload"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

// testConfig seeds a small two-sided store: 40 plane objects plus a 5x5
// street grid with 6 sites.
func testConfig(t *testing.T) index.Config {
	t.Helper()
	g, err := roadnet.GridNetwork(5, 5, testBounds, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return index.Config{
		Fanout:       8,
		Bounds:       testBounds,
		Objects:      workload.Uniform(40, testBounds, 1),
		Network:      g,
		NetworkSites: []int{0, 6, 12, 18, 24},
	}
}

// driver generates deterministic mixed-side mutation batches that are
// valid against the tracked live state: removals only target pre-batch
// live ids/sites, and the network side never drains below two sites.
type driver struct {
	rng   *rand.Rand
	live  []int
	sites map[int]bool
	nv    int
}

func newDriver(seed int64, cfg index.Config, liveIDs []int) *driver {
	d := &driver{rng: rand.New(rand.NewSource(seed)), live: append([]int(nil), liveIDs...), sites: map[int]bool{}, nv: cfg.Network.NumVertices()}
	for _, v := range cfg.NetworkSites {
		d.sites[v] = true
	}
	return d
}

func (d *driver) next() []index.Mutation {
	n := 1 + d.rng.Intn(3)
	muts := make([]index.Mutation, 0, n)
	touched := map[int]bool{} // vertices already used this batch
	for len(muts) < n {
		switch d.rng.Intn(4) {
		case 0, 1: // plane insert
			muts = append(muts, index.Mutation{Insert: true, P: geom.Pt(d.rng.Float64()*1000, d.rng.Float64()*1000)})
		case 2: // plane remove
			if len(d.live) < 6 {
				continue
			}
			i := d.rng.Intn(len(d.live))
			muts = append(muts, index.Mutation{ID: d.live[i]})
			d.live = append(d.live[:i], d.live[i+1:]...)
		case 3: // network site toggle
			v := d.rng.Intn(d.nv)
			if touched[v] {
				continue
			}
			if d.sites[v] {
				if len(d.sites) <= 2 {
					continue
				}
				delete(d.sites, v)
				muts = append(muts, index.Mutation{Network: true, ID: v})
			} else {
				d.sites[v] = true
				muts = append(muts, index.Mutation{Network: true, Insert: true, ID: v})
			}
			touched[v] = true
		}
	}
	return muts
}

// note records the ids a reference Apply assigned so the driver can
// target live objects later.
func (d *driver) note(muts []index.Mutation, ids []int) {
	for i, m := range muts {
		if !m.Network && m.Insert {
			d.live = append(d.live, ids[i])
		}
	}
}

// applyBoth drives the same batch through the WAL-managed store and the
// in-process reference and asserts both assign identical ids.
func applyBoth(t *testing.T, d *driver, got, want *index.Store, muts []index.Mutation) {
	t.Helper()
	wids, err := want.Apply(muts)
	if err != nil {
		t.Fatalf("reference Apply: %v", err)
	}
	gids, err := got.Apply(muts)
	if err != nil {
		t.Fatalf("managed Apply: %v", err)
	}
	if len(gids) != len(wids) {
		t.Fatalf("id count: got %d, want %d", len(gids), len(wids))
	}
	for i := range gids {
		if gids[i] != wids[i] {
			t.Fatalf("mutation %d: managed store assigned id %d, reference %d", i, gids[i], wids[i])
		}
	}
	d.note(muts, wids)
}

// assertStoresEqual asserts the two stores are query-equivalent: same
// epoch, same live objects and next id, same kNN answers over a probe
// grid on the plane side and at every vertex on the network side.
func assertStoresEqual(t *testing.T, tag string, got, want *index.Store) {
	t.Helper()
	if g, w := got.Epoch(), want.Epoch(); g != w {
		t.Fatalf("%s: epoch %d, want %d", tag, g, w)
	}
	gs, ws := got.Acquire(), want.Acquire()
	defer gs.Release()
	defer ws.Release()
	gobjs, gnext := gs.PlaneObjects()
	wobjs, wnext := ws.PlaneObjects()
	if gnext != wnext {
		t.Fatalf("%s: next id %d, want %d", tag, gnext, wnext)
	}
	if len(gobjs) != len(wobjs) {
		t.Fatalf("%s: %d live objects, want %d", tag, len(gobjs), len(wobjs))
	}
	for i := range gobjs {
		if gobjs[i] != wobjs[i] {
			t.Fatalf("%s: object %d: %+v, want %+v", tag, i, gobjs[i], wobjs[i])
		}
	}
	if wp := ws.Plane(); wp != nil {
		gp := gs.Plane()
		if gp == nil {
			t.Fatalf("%s: recovered store lost its plane side", tag)
		}
		for x := 0.0; x <= 1000; x += 250 {
			for y := 0.0; y <= 1000; y += 250 {
				q := geom.Pt(x+1, y+1)
				gk, wk := gp.KNN(q, 4), wp.KNN(q, 4)
				if len(gk) != len(wk) {
					t.Fatalf("%s: KNN(%v) size %d, want %d", tag, q, len(gk), len(wk))
				}
				for i := range gk {
					if gk[i] != wk[i] {
						t.Fatalf("%s: KNN(%v)[%d] = %d, want %d", tag, q, i, gk[i], wk[i])
					}
				}
			}
		}
	}
	gsites, wsites := gs.NetworkSites(), ws.NetworkSites()
	if len(gsites) != len(wsites) {
		t.Fatalf("%s: %d network sites, want %d", tag, len(gsites), len(wsites))
	}
	for i := range gsites {
		if gsites[i] != wsites[i] {
			t.Fatalf("%s: site[%d] = %d, want %d", tag, i, gsites[i], wsites[i])
		}
	}
	if wn := ws.Network(); wn != nil {
		gn := gs.Network()
		if gn == nil {
			t.Fatalf("%s: recovered store lost its network side", tag)
		}
		for v := 0; v < wn.Graph().NumVertices(); v++ {
			pos := roadnet.VertexPosition(v)
			gk, gd := gn.KNNWithDistances(pos, 3)
			wk, wd := wn.KNNWithDistances(pos, 3)
			if len(gk) != len(wk) {
				t.Fatalf("%s: network KNN(v%d) size %d, want %d", tag, v, len(gk), len(wk))
			}
			for i := range gk {
				if gk[i] != wk[i] || math.Abs(gd[i]-wd[i]) > 1e-9 {
					t.Fatalf("%s: network KNN(v%d)[%d] = (%d, %g), want (%d, %g)", tag, v, i, gk[i], gd[i], wk[i], wd[i])
				}
			}
		}
	}
}

// reference builds the plain in-process store every recovery test
// compares against, and returns the ids of its seed objects.
func reference(t *testing.T, cfg index.Config) (*index.Store, []int) {
	t.Helper()
	ref, err := index.NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	s := ref.Acquire()
	objs, _ := s.PlaneObjects()
	s.Release()
	ids := make([]int, len(objs))
	for i, o := range objs {
		ids[i] = o.ID
	}
	return ref, ids
}

// TestCleanRestartEquivalence drives mixed batches, closes cleanly, and
// reopens the directory WITHOUT the seed objects: the recovered store
// must answer identically to the in-process reference, and keep
// assigning the same ids. This proves the data directory is
// self-contained from the first boot.
func TestCleanRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	ref, ids := reference(t, cfg)

	mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(11, cfg, ids)
	for i := 0; i < 50; i++ {
		applyBoth(t, d, mgr.Store(), ref, d.next())
	}
	assertStoresEqual(t, "before restart", mgr.Store(), ref)
	st := mgr.Stats()
	if st.AppendedBatches != 50 {
		t.Fatalf("AppendedBatches = %d, want 50", st.AppendedBatches)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	mgr.Store().Close()

	// Reopen with no seed data: recovery must not need it.
	cfg2 := cfg
	cfg2.Objects, cfg2.NetworkSites = nil, nil
	mgr2, err := Open(cfg2, Options{Dir: dir, Sync: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr2.Close(); mgr2.Store().Close() }()
	assertStoresEqual(t, "after restart", mgr2.Store(), ref)
	if got, want := mgr2.Stats().RecoveredEpoch, ref.Epoch(); got != want {
		t.Fatalf("RecoveredEpoch = %d, want %d", got, want)
	}
	// Id continuity: the next insert gets the same id on both sides.
	applyBoth(t, d, mgr2.Store(), ref, []index.Mutation{{Insert: true, P: geom.Pt(3, 3)}})
}

// TestCrashRecoveryReplay models SIGKILL under -fsync always: the
// manager is abandoned without Close (so no final checkpoint), with
// tiny segments and a short checkpoint cadence so recovery exercises a
// checkpoint load plus multi-segment WAL replay and pruning.
func TestCrashRecoveryReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	ref, ids := reference(t, cfg)

	mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways, CheckpointEvery: 16, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(22, cfg, ids)
	for i := 0; i < 60; i++ {
		applyBoth(t, d, mgr.Store(), ref, d.next())
	}
	if mgr.Stats().Fsyncs == 0 {
		t.Fatal("fsync=always appended 60 batches without a single fsync")
	}
	// Crash: no mgr.Close(), no final checkpoint. fsync=always means every
	// acknowledged batch is already on disk.
	mgr.Store().Close()

	mgr2, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr2.Close(); mgr2.Store().Close() }()
	assertStoresEqual(t, "after crash", mgr2.Store(), ref)
	st := mgr2.Stats()
	if st.RecoveredEpoch != ref.Epoch() {
		t.Fatalf("RecoveredEpoch = %d, want %d", st.RecoveredEpoch, ref.Epoch())
	}
	if st.ReplayedBatches == 0 {
		t.Fatal("crash recovery replayed nothing: the WAL tail past the checkpoint was lost")
	}
	applyBoth(t, d, mgr2.Store(), ref, []index.Mutation{{Insert: true, P: geom.Pt(7, 7)}})
}

// TestTornFinalFrame truncates the last WAL segment mid-frame (a crash
// during the final append): recovery must truncate the torn tail, come
// back exactly one batch behind, and accept that batch again with the
// same ids.
func TestTornFinalFrame(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	refAll, ids := reference(t, cfg)
	refPrefix, _ := reference(t, cfg)

	mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(33, cfg, ids)
	var last []index.Mutation
	for i := 0; i < 20; i++ {
		last = d.next()
		if i < 19 {
			if _, err := refPrefix.Apply(last); err != nil {
				t.Fatal(err)
			}
		}
		applyBoth(t, d, mgr.Store(), refAll, last)
	}
	mgr.Store().Close() // crash

	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	sort.Strings(segs)
	newest := segs[len(segs)-1]
	fi, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last frame: the final batch becomes a torn write.
	if err := os.Truncate(newest, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	mgr2, err := Open(cfg, Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr2.Close(); mgr2.Store().Close() }()
	assertStoresEqual(t, "after torn frame", mgr2.Store(), refPrefix)
	if tb := mgr2.Stats().TruncatedBytes; tb <= 0 {
		t.Fatalf("TruncatedBytes = %d, want > 0", tb)
	}
	// The torn batch can be re-submitted and lands on the same ids the
	// uncrashed reference assigned.
	gids, err := mgr2.Store().Apply(last)
	if err != nil {
		t.Fatal(err)
	}
	_ = gids
	assertStoresEqual(t, "after re-submitting torn batch", mgr2.Store(), refAll)
}

// TestCheckpointPruneLifecycle forces frequent checkpoints over tiny
// segments and asserts the directory converges: at most KeepCheckpoints
// checkpoint files, old segments pruned, and the directory still
// recovers exactly.
func TestCheckpointPruneLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	ref, ids := reference(t, cfg)

	mgr, err := Open(cfg, Options{Dir: dir, Sync: SyncOff, CheckpointEvery: 8, SegmentBytes: 256, KeepCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := newDriver(44, cfg, ids)
	for i := 0; i < 100; i++ {
		applyBoth(t, d, mgr.Store(), ref, d.next())
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if st.PrunedSegments == 0 {
		t.Fatal("no segments pruned despite frequent checkpoints over tiny segments")
	}
	cks, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) > 2 {
		t.Fatalf("%d checkpoint files on disk, want <= 2", len(cks))
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != st.Segments {
		t.Fatalf("%d segment files on disk, stats say %d", len(segs), st.Segments)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	mgr.Store().Close()

	mgr2, err := Open(cfg, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr2.Close(); mgr2.Store().Close() }()
	assertStoresEqual(t, "after prune lifecycle", mgr2.Store(), ref)
}

func TestParseSyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "interval", "off"} {
		if p, err := ParseSyncPolicy(s); err != nil || string(p) != s {
			t.Fatalf("ParseSyncPolicy(%q) = %q, %v", s, p, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-maybe"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

func TestOpenRejectsMismatchedDir(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t)
	mgr, err := Open(cfg, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	mgr.Store().Close()

	bad := cfg
	bad.Bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(9, 9))
	if _, err := Open(bad, Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a data dir created under different bounds")
	}
	noNet := cfg
	noNet.Network, noNet.NetworkSites = nil, nil
	if _, err := Open(noNet, Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a data dir created with a network side for a plane-only config")
	}
	withRestore := cfg
	withRestore.Restore = &index.Restore{}
	if _, err := Open(withRestore, Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a caller-supplied Restore")
	}
	if _, err := Open(cfg, Options{}); err == nil {
		t.Fatal("Open accepted an empty Dir")
	}
}
