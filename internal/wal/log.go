package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/obs"
)

// On-disk layout. A segment file starts with an 8-byte magic, then a
// sequence of frames: [len uint32 LE][crc32c uint32 LE][payload]. len is
// the payload length; the CRC covers the payload only. A frame that ends
// past the file, fails its CRC, or has an absurd length is the torn tail
// of a crash — recovery truncates the segment there and discards every
// later segment (records after a tear are unreachable: their epochs would
// leave a gap).
const (
	segMagic        = "INSQWAL1"
	frameHdrLen     = 8
	maxFramePayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends after Close (or after Close raced the
// append's group-commit wait).
var ErrClosed = errors.New("wal: closed")

// segInfo is one segment file. Segments are named wal-%016x.seg by the
// epoch of the first record written to them, so names are strictly
// increasing and the covered epoch ranges are recoverable from a
// directory listing alone: segment i holds records with epochs in
// [first_i, first_{i+1}).
type segInfo struct {
	first uint64
	path  string
}

// segLog is the append side of the segmented log. One writer goroutine at
// a time appends (the store's mutation lock already serializes batches);
// the group-commit machinery exists for the fsync side: under the
// `always` policy a background syncer fsyncs once per generation, so
// every appender blocked on the same generation shares one fsync.
type segLog struct {
	dir      string
	policy   SyncPolicy
	segBytes int64
	obs      *obs.Pipeline // nil when observability is off

	mu       sync.Mutex
	syncWork *sync.Cond // wakes the always-policy syncer
	syncDone *sync.Cond // wakes appenders waiting for their generation
	f        *os.File
	w        *bufio.Writer
	size     int64 // current segment size including buffered bytes
	segs     []segInfo
	closed   bool
	err      error // sticky first I/O error; the log is dead after

	appendGen uint64 // generation of the newest buffered append
	syncedGen uint64 // generation covered by the last fsync

	fsyncs  uint64
	fsyncNS int64
	pruned  uint64

	stop     chan struct{}
	loopDone chan struct{}
}

// openSegLog opens the log for appending after recovery: it reopens the
// last surviving segment at its validated length, or creates a fresh one
// named by nextEpoch when the directory holds none.
func openSegLog(dir string, segs []segInfo, nextEpoch uint64, policy SyncPolicy, syncEvery time.Duration, segBytes int64, o *obs.Pipeline) (*segLog, error) {
	l := &segLog{
		dir:      dir,
		policy:   policy,
		segBytes: segBytes,
		obs:      o,
		segs:     segs,
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	l.syncWork = sync.NewCond(&l.mu)
	l.syncDone = sync.NewCond(&l.mu)
	if len(segs) == 0 {
		if err := l.createSegmentLocked(nextEpoch); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		l.f, l.w, l.size = f, bufio.NewWriterSize(f, 1<<16), fi.Size()
	}
	switch policy {
	case SyncAlways:
		go l.alwaysLoop()
	case SyncInterval:
		go l.intervalLoop(syncEvery)
	default:
		close(l.loopDone)
	}
	return l, nil
}

// createSegmentLocked starts a new segment named by the epoch of its
// first record. The magic is buffered with the records (one file, one
// fsync), but the directory entry is fsynced immediately: a record must
// never be acknowledged durable inside a file whose name could vanish
// with the directory's page cache.
func (l *segLog) createSegmentLocked(first uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%016x.seg", first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f, l.w, l.size = f, w, int64(len(segMagic))
	l.segs = append(l.segs, segInfo{first: first, path: path})
	return nil
}

// Append buffers one framed record. firstEpoch is the epoch of the
// record's first mutation; it names the next segment if this append
// rotates. Under the `always` policy, Append returns only after an fsync
// covers the record; under `interval`/`off` it returns once buffered and
// the background ticker (or nothing but segment rotation and Close) makes
// it durable.
func (l *segLog) Append(firstEpoch uint64, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("wal: record payload %d bytes exceeds the %d frame limit", len(payload), maxFramePayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	// wal.disk.full: a transient ENOSPC before any byte is buffered — the
	// append fails but the log stays healthy (unlike a write/fsync error,
	// which is sticky).
	if err := fault.WALDiskFull.Fire(); err != nil {
		return err
	}
	need := int64(frameHdrLen + len(payload))
	if l.size+need > l.segBytes && l.size > int64(len(segMagic)) {
		if err := l.rotateLocked(firstEpoch); err != nil {
			return l.failLocked(err)
		}
	}
	var hdr [frameHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return l.failLocked(err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return l.failLocked(err)
	}
	l.size += need
	l.appendGen++
	if l.policy != SyncAlways {
		return nil
	}
	gen := l.appendGen
	l.syncWork.Signal()
	for l.syncedGen < gen && l.err == nil && !l.closed {
		l.syncDone.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.syncedGen < gen {
		return ErrClosed
	}
	return nil
}

// rotateLocked finishes the current segment (flush, fsync, close — its
// records become durable regardless of policy) and opens the next one.
func (l *segLog) rotateLocked(nextFirst uint64) error {
	if err := l.syncFileLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.createSegmentLocked(nextFirst)
}

// syncFileLocked flushes the buffer and fsyncs the current segment,
// advancing the sync generation over everything appended so far.
func (l *segLog) syncFileLocked() error {
	target := l.appendGen
	start := time.Now()
	// wal.fsync.delay: a hung disk — the stall happens holding l.mu, just
	// like a real fsync that never returns.
	fault.WALFsyncDelay.Fire()
	if err := l.w.Flush(); err != nil {
		return err
	}
	// wal.fsync.err: surfaced through the normal error return, so callers
	// failLocked it and the log goes sticky-dead like a real fsync error.
	if err := fault.WALFsyncErr.Fire(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	d := time.Since(start)
	l.fsyncs++
	l.fsyncNS += d.Nanoseconds()
	if l.obs.Enabled() {
		l.obs.Observe(obs.StageFsync, d)
		if l.policy != SyncAlways {
			// Background fsyncs have no request; slow ones log without a
			// trace. Under the always policy the appender's commit wait
			// logs instead, with the trace (see Manager.AppendBatch).
			l.obs.SlowFsync("", d)
		}
	}
	l.syncedGen = target
	l.syncDone.Broadcast()
	return nil
}

// sizeBytes returns the open segment's size including buffered bytes.
func (l *segLog) sizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// failLocked records the log's first I/O error and wakes every waiter;
// all later operations return it. A WAL that cannot write must fail the
// batches it covers, not limp along with holes.
func (l *segLog) failLocked(err error) error {
	if l.err == nil {
		l.err = err
	}
	l.syncWork.Broadcast()
	l.syncDone.Broadcast()
	return l.err
}

// alwaysLoop is the group-commit syncer of the `always` policy: it fsyncs
// whole generations, so N appenders blocked behind one slow fsync are
// covered together by the next. The loop outlives a sticky log error —
// it idles until reset clears the error — so a healed log keeps its
// syncer without respawning goroutines.
func (l *segLog) alwaysLoop() {
	defer close(l.loopDone)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closed && (l.err != nil || l.syncedGen == l.appendGen) {
			l.syncWork.Wait()
		}
		if l.closed {
			return
		}
		if err := l.syncFileLocked(); err != nil {
			l.failLocked(err)
		}
	}
}

// intervalLoop is the `interval` policy: flush+fsync on a fixed cadence,
// bounding the crash-loss window to one tick while keeping fsyncs off
// every append.
func (l *segLog) intervalLoop(every time.Duration) {
	defer close(l.loopDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.syncedGen != l.appendGen {
				// A failed tick marks the log dead but keeps the ticker
				// alive: a later reset clears the error and the cadence
				// resumes without respawning the loop.
				if err := l.syncFileLocked(); err != nil {
					l.failLocked(err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// pruneTo deletes segments made obsolete by a checkpoint at epoch: a
// segment is removable once its successor's first epoch is <= epoch+1
// (every record it holds then predates the checkpoint). The active
// segment always survives.
func (l *segLog) pruneTo(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) >= 2 && l.segs[1].first <= epoch+1 {
		if err := os.Remove(l.segs[0].path); err != nil {
			return fmt.Errorf("wal: prune segment: %w", err)
		}
		l.segs = l.segs[1:]
		l.pruned++
	}
	return nil
}

// statsSnapshot reads the log-side counters.
func (l *segLog) statsSnapshot() (fsyncs uint64, fsyncNS int64, segments int, pruned uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncs, l.fsyncNS, len(l.segs), l.pruned
}

// Close makes everything appended so far durable (under every policy,
// including `off`) and closes the segment. Appends after Close fail with
// ErrClosed.
//
// Ordering matters: the background syncer is stopped and joined *before*
// the final flush, so Close can never fsync concurrently with an
// in-flight interval tick (or re-sync a generation the tick just
// covered). An in-flight tick holds l.mu through its fsync, so by the
// time Close acquires the lock below, the tick has fully completed and
// its generation is recorded in syncedGen.
func (l *segLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stop)
	l.syncWork.Broadcast()
	l.syncDone.Broadcast()
	l.mu.Unlock()
	<-l.loopDone

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.err == nil && l.syncedGen != l.appendGen {
		err = l.syncFileLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.err != nil && err == nil {
		err = l.err
	}
	return err
}

// dead reports whether the log has taken a sticky I/O error.
func (l *segLog) dead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err != nil
}

// reset discards the log and starts over on a fresh segment whose first
// record will carry epoch nextFirst. It is the heal half of degraded
// mode and is only safe when the caller guarantees no appends are in
// flight and everything the old segments held is covered by a checkpoint
// at nextFirst-1: the old file (dead handle or not) is closed, every
// segment is deleted, the sticky error is cleared, and a fresh segment
// is created and fsynced — the fsync both proves the disk accepts writes
// again and makes the new segment's magic durable. Any failure re-marks
// the log dead and is returned.
func (l *segLog) reset(nextFirst uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.err = nil
	if l.f != nil {
		l.f.Close() // best-effort: often a dead handle
	}
	for _, sg := range l.segs {
		if err := os.Remove(sg.path); err != nil {
			l.err = fmt.Errorf("wal: reset: %w", err)
			return l.err
		}
	}
	l.segs = l.segs[:0]
	if err := l.createSegmentLocked(nextFirst); err != nil {
		l.err = err
		return err
	}
	// The fsync also realigns the generations (syncedGen = appendGen):
	// every append the old log buffered was either fsynced (and is now
	// covered by the caller's checkpoint) or failed back to its appender.
	if err := l.syncFileLocked(); err != nil {
		l.err = err
		return err
	}
	return nil
}

// scanSegments lists the directory's segment files ascending by first
// epoch. Foreign files are ignored.
func scanSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		hexa := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		first, perr := strconv.ParseUint(hexa, 16, 64)
		if perr != nil || len(hexa) != 16 {
			continue
		}
		segs = append(segs, segInfo{first: first, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// replayResult is what a recovery scan learned about the log.
type replayResult struct {
	segs           []segInfo // surviving segments, torn tails truncated
	truncatedBytes int64     // bytes dropped at (and after) the first tear
}

// replaySegments streams every valid record to apply, in order, handling
// the crash cases: a torn or corrupt frame truncates its segment at the
// last valid frame boundary and discards all later segments; a segment
// with a torn magic is deleted outright (it never held a durable record —
// records are only acknowledged after the magic reached the same file).
// Decode errors inside a CRC-valid frame and apply errors abort recovery:
// they are corruption or version skew, not a crash artifact.
func replaySegments(segs []segInfo, apply func(firstEpoch uint64, muts []index.Mutation) error) (replayResult, error) {
	res := replayResult{}
	for i, sg := range segs {
		keep, clean, err := replaySegment(sg.path, apply, &res)
		if err != nil {
			return res, err
		}
		if keep {
			res.segs = append(res.segs, sg)
		}
		if !clean {
			for _, late := range segs[i+1:] {
				fi, serr := os.Stat(late.path)
				if serr == nil {
					res.truncatedBytes += fi.Size()
				}
				if rerr := os.Remove(late.path); rerr != nil {
					return res, fmt.Errorf("wal: drop post-tear segment: %w", rerr)
				}
			}
			break
		}
	}
	return res, nil
}

// replaySegment replays one segment. keep reports whether the file still
// exists (possibly truncated); clean reports whether it ended at a clean
// frame boundary (false means the scan must stop here).
func replaySegment(path string, apply func(uint64, []index.Mutation) error, res *replayResult) (keep, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, false, fmt.Errorf("wal: replay: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return false, false, fmt.Errorf("wal: replay: %w", err)
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [len(segMagic)]byte
	if _, rerr := io.ReadFull(br, magic[:]); rerr != nil || string(magic[:]) != segMagic {
		res.truncatedBytes += size
		if err := os.Remove(path); err != nil {
			return false, false, fmt.Errorf("wal: drop torn segment: %w", err)
		}
		return false, false, nil
	}
	off := int64(len(segMagic))
	truncate := func() (bool, bool, error) {
		res.truncatedBytes += size - off
		if err := os.Truncate(path, off); err != nil {
			return false, false, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		return true, false, nil
	}
	var hdr [frameHdrLen]byte
	for {
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return true, true, nil // clean end of segment
			}
			return truncate() // torn header
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if plen == 0 || plen > maxFramePayload || off+frameHdrLen+plen > size {
			return truncate()
		}
		payload := make([]byte, plen)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			return truncate()
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return truncate()
		}
		first, muts, derr := decodeBatchRecord(payload)
		if derr != nil {
			return true, false, fmt.Errorf("wal: %s: record at offset %d: %w", path, off, derr)
		}
		if aerr := apply(first, muts); aerr != nil {
			return true, false, aerr
		}
		off += frameHdrLen + plen
	}
}

// syncDir fsyncs a directory so just-created (or renamed-in) entries
// survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}
