// Command benchguard is the CI bench regression gate: it compares a
// freshly measured serving record against the committed baseline and
// exits non-zero when the serving path regressed beyond the per-record
// thresholds. Seven record kinds are gated, matching the serving
// benchmarks bench emits:
//
//	engine  (BENCH_engine.json):  updates_per_sec drop > -max-rate-drop,
//	                              allocs_per_update growth > -max-alloc-growth
//	network (BENCH_network.json): same thresholds as engine, applied to the
//	                              road-network serving path; optionally also
//	                              relaxations_per_update growth >
//	                              -max-relax-growth, p95_update_us growth >
//	                              -max-p95-growth and an absolute
//	                              allocs_per_update cap -max-allocs
//	                              (each 0 = off)
//	stream  (BENCH_stream.json):  push_p95_us growth > -max-push-growth,
//	                              healthy-path dropped > -max-dropped
//	wal     (BENCH_wal.json):     self-contained record: fresh
//	                              updates_per_sec vs its own
//	                              base_updates_per_sec overhead >
//	                              -max-wal-overhead, recovery_ms >
//	                              -max-recovery-ms (absolute)
//	obs     (BENCH_obs.json):     self-contained like wal: instrumented
//	                              vs noop serving rate overhead >
//	                              -max-obs-overhead
//	chaos   (BENCH_chaos.json):   self-contained invariants of the fresh
//	                              record only: recovered must be true,
//	                              degraded reads must be error-free, heal
//	                              must beat -max-recover-ms, admission
//	                              control must actually shed, and some
//	                              writes must succeed post-heal
//	serve   (BENCH_serve.json):   self-contained like wal: the binary
//	                              streaming ingest path must beat the
//	                              JSON-per-request path by at least
//	                              -min-serve-speedup on the same process,
//	                              and neither path may shed on the
//	                              healthy workload
//
//	go run ./cmd/bench -exp ENGINE -scale 4 -benchout BENCH_engine.fresh.json
//	go run ./cmd/benchguard -kind engine -baseline BENCH_engine.json -fresh BENCH_engine.fresh.json
//
// Throughput and latency are machine-sensitive, which is why those
// thresholds are deliberately loose; the allocation rate and the drop
// counter are deterministic for a given build and guard the
// allocation-free hot path and the healthy delivery path exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// record is the union of the per-kind fields the guard cares about; each
// kind reads its own subset.
type record struct {
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	AllocsPerUpdate float64 `json:"allocs_per_update"`
	PushP95US       float64 `json:"push_p95_us"`
	Dropped         uint64  `json:"dropped"`
	// network records also carry the per-update search work (Dijkstra edge
	// relaxations, deterministic for a build) and the update tail latency.
	RelaxationsPerUpdate float64 `json:"relaxations_per_update"`
	P95UpdateUS          float64 `json:"p95_update_us"`
	// wal records carry their own in-process baseline rate, so the
	// overhead gate is machine-consistent by construction.
	BaseUpdatesPerSec float64 `json:"base_updates_per_sec"`
	RecoveryMS        float64 `json:"recovery_ms"`
	// chaos records carry the fault-injection invariants; like wal they
	// are self-contained, gated on the fresh record alone.
	Rounds                   int     `json:"rounds"`
	TimeToRecoverMaxMS       float64 `json:"time_to_recover_max_ms"`
	ReadErrorsDuringDegraded int     `json:"read_errors_during_degraded"`
	ShedRate                 float64 `json:"shed_rate"`
	WritesOK                 int     `json:"writes_ok"`
	Recovered                bool    `json:"recovered"`
	// serve records are self-contained A/Bs: both rates and the shed
	// counters come from the same process, so the gate reads the fresh
	// record alone.
	JSONUpdatesPerSec   float64 `json:"json_updates_per_sec"`
	BinaryUpdatesPerSec float64 `json:"binary_updates_per_sec"`
	Speedup             float64 `json:"speedup"`
	ShedJSON            uint64  `json:"shed_json"`
	ShedBinary          uint64  `json:"shed_binary"`
}

func load(path string) (record, error) {
	var r record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// thresholds collects every gate knob; each kind applies its subset. The
// zero value of the optional gates (relax, p95, absolute allocs) means
// "off", so existing invocations keep their behavior.
type thresholds struct {
	maxRateDrop     float64 // engine, network
	maxAllocGrowth  float64 // engine, network
	maxRelaxGrowth  float64 // engine, network: relaxations_per_update factor, 0 = off
	maxP95Growth    float64 // engine, network: p95_update_us factor, 0 = off
	maxAllocs       float64 // engine, network: absolute allocs_per_update cap, 0 = off
	maxPushGrowth   float64 // stream
	maxDropped      uint64  // stream
	maxWALOverhead  float64 // wal
	maxRecoveryMS   float64 // wal
	maxObsOverhead  float64 // obs
	maxRecoverMS    float64 // chaos: worst heal round trip, absolute
	minServeSpeedup float64 // serve: binary-over-JSON throughput floor
}

// check returns the regression verdicts for one record kind; factored out
// of main for tests.
func check(kind string, base, fresh record, th thresholds) []string {
	var fails []string
	switch kind {
	case "engine", "network":
		if base.UpdatesPerSec > 0 {
			drop := 1 - fresh.UpdatesPerSec/base.UpdatesPerSec
			if drop > th.maxRateDrop {
				fails = append(fails, fmt.Sprintf(
					"updates_per_sec dropped %.1f%% (%.0f -> %.0f; limit %.0f%%)",
					100*drop, base.UpdatesPerSec, fresh.UpdatesPerSec, 100*th.maxRateDrop))
			}
		}
		if base.AllocsPerUpdate > 0 {
			growth := fresh.AllocsPerUpdate / base.AllocsPerUpdate
			if growth > th.maxAllocGrowth {
				fails = append(fails, fmt.Sprintf(
					"allocs_per_update grew %.2fx (%.1f -> %.1f; limit %.1fx)",
					growth, base.AllocsPerUpdate, fresh.AllocsPerUpdate, th.maxAllocGrowth))
			}
		}
		if th.maxAllocs > 0 && fresh.AllocsPerUpdate > th.maxAllocs {
			fails = append(fails, fmt.Sprintf(
				"allocs_per_update = %.1f (absolute limit %.1f)",
				fresh.AllocsPerUpdate, th.maxAllocs))
		}
		if th.maxRelaxGrowth > 0 && base.RelaxationsPerUpdate > 0 {
			growth := fresh.RelaxationsPerUpdate / base.RelaxationsPerUpdate
			if growth > th.maxRelaxGrowth {
				fails = append(fails, fmt.Sprintf(
					"relaxations_per_update grew %.2fx (%.1f -> %.1f; limit %.1fx): the search pruning regressed",
					growth, base.RelaxationsPerUpdate, fresh.RelaxationsPerUpdate, th.maxRelaxGrowth))
			}
		}
		if th.maxP95Growth > 0 && base.P95UpdateUS > 0 {
			growth := fresh.P95UpdateUS / base.P95UpdateUS
			if growth > th.maxP95Growth {
				fails = append(fails, fmt.Sprintf(
					"p95_update_us grew %.2fx (%.1f -> %.1f; limit %.1fx)",
					growth, base.P95UpdateUS, fresh.P95UpdateUS, th.maxP95Growth))
			}
		}
	case "wal":
		// The wal record is self-contained: both rates come from the same
		// process, so the gate reads the fresh record only (the committed
		// baseline just anchors the history).
		if fresh.BaseUpdatesPerSec > 0 {
			overhead := 1 - fresh.UpdatesPerSec/fresh.BaseUpdatesPerSec
			if overhead > th.maxWALOverhead {
				fails = append(fails, fmt.Sprintf(
					"WAL serving overhead %.1f%% (%.0f/s with log vs %.0f/s without; limit %.0f%%)",
					100*overhead, fresh.UpdatesPerSec, fresh.BaseUpdatesPerSec, 100*th.maxWALOverhead))
			}
		}
		if fresh.RecoveryMS > th.maxRecoveryMS {
			fails = append(fails, fmt.Sprintf(
				"crash recovery took %.1fms (limit %.0fms)", fresh.RecoveryMS, th.maxRecoveryMS))
		}
	case "obs":
		// Self-contained like wal: metrics-on vs noop rate measured by the
		// same process, gating the instrumentation overhead.
		if fresh.BaseUpdatesPerSec > 0 {
			overhead := 1 - fresh.UpdatesPerSec/fresh.BaseUpdatesPerSec
			if overhead > th.maxObsOverhead {
				fails = append(fails, fmt.Sprintf(
					"observability overhead %.1f%% (%.0f/s instrumented vs %.0f/s noop; limit %.0f%%)",
					100*overhead, fresh.UpdatesPerSec, fresh.BaseUpdatesPerSec, 100*th.maxObsOverhead))
			}
		}
	case "chaos":
		// Self-contained: every gate is an invariant of the fresh record.
		// A failed invariant means the degradation ladder itself broke,
		// not that a number drifted.
		if fresh.Rounds < 1 {
			fails = append(fails, fmt.Sprintf("rounds = %d: no degrade/heal round trips ran", fresh.Rounds))
		}
		if !fresh.Recovered {
			fails = append(fails, "recovered = false: post-crash store does not match the pre-crash probe")
		}
		if fresh.ReadErrorsDuringDegraded > 0 {
			fails = append(fails, fmt.Sprintf(
				"read_errors_during_degraded = %d: reads must keep serving while the WAL is degraded",
				fresh.ReadErrorsDuringDegraded))
		}
		if fresh.TimeToRecoverMaxMS > th.maxRecoverMS {
			fails = append(fails, fmt.Sprintf(
				"time_to_recover_max_ms = %.1f (limit %.0f): the heal probe is too slow",
				fresh.TimeToRecoverMaxMS, th.maxRecoverMS))
		}
		if fresh.ShedRate <= 0 {
			fails = append(fails, "shed_rate = 0: admission control never shed under overload")
		}
		if fresh.WritesOK == 0 {
			fails = append(fails, "writes_ok = 0: no write ever succeeded after healing")
		}
	case "serve":
		// Self-contained: both paths ran in one process against one
		// engine, so the speedup is machine-consistent and the gate reads
		// the fresh record alone. A speedup below the floor means the
		// binary protocol stopped paying for itself; a healthy-path shed
		// means admission control fired on a workload that should sail.
		if fresh.JSONUpdatesPerSec <= 0 || fresh.BinaryUpdatesPerSec <= 0 {
			fails = append(fails, "serve record is empty: one of the A/B phases measured zero throughput")
		}
		if fresh.Speedup < th.minServeSpeedup {
			fails = append(fails, fmt.Sprintf(
				"binary ingest speedup %.2fx over JSON (%.0f/s vs %.0f/s; floor %.1fx)",
				fresh.Speedup, fresh.BinaryUpdatesPerSec, fresh.JSONUpdatesPerSec, th.minServeSpeedup))
		}
		if fresh.ShedJSON > 0 || fresh.ShedBinary > 0 {
			fails = append(fails, fmt.Sprintf(
				"healthy-path sheds: json=%d binary=%d (must be 0)", fresh.ShedJSON, fresh.ShedBinary))
		}
	case "stream":
		if base.PushP95US > 0 {
			growth := fresh.PushP95US / base.PushP95US
			if growth > th.maxPushGrowth {
				fails = append(fails, fmt.Sprintf(
					"push_p95_us grew %.2fx (%.1f -> %.1f; limit %.1fx)",
					growth, base.PushP95US, fresh.PushP95US, th.maxPushGrowth))
			}
		}
		if fresh.Dropped > th.maxDropped {
			fails = append(fails, fmt.Sprintf(
				"healthy-path dropped = %d (limit %d): a draining subscriber lost events",
				fresh.Dropped, th.maxDropped))
		}
	default:
		fails = append(fails, fmt.Sprintf("unknown record kind %q (engine, network, stream, wal, obs, chaos, serve)", kind))
	}
	return fails
}

// summary renders the passing verdict for one kind.
func summary(kind string, base, fresh record) string {
	if kind == "wal" {
		return fmt.Sprintf("ok: WAL overhead %.1f%% (%.0f/s vs %.0f/s), recovery %.1fms",
			100*(1-fresh.UpdatesPerSec/maxFloat(fresh.BaseUpdatesPerSec, 1)),
			fresh.UpdatesPerSec, fresh.BaseUpdatesPerSec, fresh.RecoveryMS)
	}
	if kind == "obs" {
		return fmt.Sprintf("ok: observability overhead %.1f%% (%.0f/s vs %.0f/s)",
			100*(1-fresh.UpdatesPerSec/maxFloat(fresh.BaseUpdatesPerSec, 1)),
			fresh.UpdatesPerSec, fresh.BaseUpdatesPerSec)
	}
	if kind == "stream" {
		return fmt.Sprintf("ok: push p95 %.1fus (baseline %.1fus), dropped %d",
			fresh.PushP95US, base.PushP95US, fresh.Dropped)
	}
	if kind == "chaos" {
		return fmt.Sprintf("ok: %d degrade/heal rounds, recover <= %.1fms, shed rate %.2f, recovered=%v",
			fresh.Rounds, fresh.TimeToRecoverMaxMS, fresh.ShedRate, fresh.Recovered)
	}
	if kind == "serve" {
		return fmt.Sprintf("ok: binary ingest %.2fx over JSON (%.0f/s vs %.0f/s), sheds json=%d binary=%d",
			fresh.Speedup, fresh.BinaryUpdatesPerSec, fresh.JSONUpdatesPerSec, fresh.ShedJSON, fresh.ShedBinary)
	}
	return fmt.Sprintf("ok: rate %.0f/s (baseline %.0f/s), allocs/update %.1f (baseline %.1f)",
		fresh.UpdatesPerSec, base.UpdatesPerSec, fresh.AllocsPerUpdate, base.AllocsPerUpdate)
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		kind            = flag.String("kind", "engine", "record kind: engine, network, stream, wal, obs, chaos or serve")
		baseline        = flag.String("baseline", "BENCH_engine.json", "committed baseline record")
		fresh           = flag.String("fresh", "BENCH_engine.fresh.json", "freshly measured record")
		maxRateDrop     = flag.Float64("max-rate-drop", 0.25, "engine/network: fail when updates_per_sec drops by more than this fraction")
		maxAllocGrowth  = flag.Float64("max-alloc-growth", 2.0, "engine/network: fail when allocs_per_update grows by more than this factor")
		maxRelaxGrowth  = flag.Float64("max-relax-growth", 0, "engine/network: fail when relaxations_per_update grows by more than this factor (0 = off)")
		maxP95Growth    = flag.Float64("max-p95-growth", 0, "engine/network: fail when p95_update_us grows by more than this factor (0 = off)")
		maxAllocs       = flag.Float64("max-allocs", 0, "engine/network: fail when the fresh allocs_per_update exceeds this absolute cap (0 = off)")
		maxPushGrowth   = flag.Float64("max-push-growth", 4.0, "stream: fail when push_p95_us grows by more than this factor")
		maxDropped      = flag.Uint64("max-dropped", 0, "stream: fail when the healthy subscriber's dropped counter exceeds this")
		maxWALOverhead  = flag.Float64("max-wal-overhead", 0.10, "wal: fail when the fresh record's updates_per_sec falls more than this fraction below its own base_updates_per_sec")
		maxRecoveryMS   = flag.Float64("max-recovery-ms", 2000, "wal: fail when the fresh record's crash recovery exceeds this many milliseconds")
		maxObsOverhead  = flag.Float64("max-obs-overhead", 0.03, "obs: fail when the fresh record's updates_per_sec falls more than this fraction below its own base_updates_per_sec")
		maxRecoverMS    = flag.Float64("max-recover-ms", 2000, "chaos: fail when the fresh record's worst disarm-to-write-success round trip exceeds this many milliseconds")
		minServeSpeedup = flag.Float64("min-serve-speedup", 3.0, "serve: fail when the binary streaming ingest path beats the JSON-per-request path by less than this factor")
	)
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*fresh)
	if err != nil {
		log.Fatal(err)
	}
	fails := check(*kind, base, cur, thresholds{
		maxRateDrop:     *maxRateDrop,
		maxAllocGrowth:  *maxAllocGrowth,
		maxRelaxGrowth:  *maxRelaxGrowth,
		maxP95Growth:    *maxP95Growth,
		maxAllocs:       *maxAllocs,
		maxPushGrowth:   *maxPushGrowth,
		maxDropped:      *maxDropped,
		maxWALOverhead:  *maxWALOverhead,
		maxRecoveryMS:   *maxRecoveryMS,
		maxObsOverhead:  *maxObsOverhead,
		maxRecoverMS:    *maxRecoverMS,
		minServeSpeedup: *minServeSpeedup,
	})
	for _, f := range fails {
		log.Printf("FAIL [%s]: %s", *kind, f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	log.Print(summary(*kind, base, cur))
}
