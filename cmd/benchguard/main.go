// Command benchguard is the CI bench regression gate: it compares a
// freshly measured BENCH_engine.json against the committed baseline and
// exits non-zero when the serving path regressed beyond the thresholds —
// an updates_per_sec drop of more than -max-rate-drop (default 25%) or an
// allocs_per_update growth beyond -max-alloc-growth (default 2x).
//
//	go run ./cmd/bench -exp ENGINE -scale 4 -benchout BENCH_engine.fresh.json
//	go run ./cmd/benchguard -baseline BENCH_engine.json -fresh BENCH_engine.fresh.json
//
// Throughput is machine-sensitive, which is why the rate threshold is
// deliberately loose; the allocation rate is deterministic for a given
// build and guards the allocation-free hot path exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

// record is the slice of EngineBenchResult the guard cares about.
type record struct {
	UpdatesPerSec   float64 `json:"updates_per_sec"`
	AllocsPerUpdate float64 `json:"allocs_per_update"`
}

func load(path string) (record, error) {
	var r record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// check returns the regression verdicts; factored out of main for tests.
func check(base, fresh record, maxRateDrop, maxAllocGrowth float64) []string {
	var fails []string
	if base.UpdatesPerSec > 0 {
		drop := 1 - fresh.UpdatesPerSec/base.UpdatesPerSec
		if drop > maxRateDrop {
			fails = append(fails, fmt.Sprintf(
				"updates_per_sec dropped %.1f%% (%.0f -> %.0f; limit %.0f%%)",
				100*drop, base.UpdatesPerSec, fresh.UpdatesPerSec, 100*maxRateDrop))
		}
	}
	if base.AllocsPerUpdate > 0 {
		growth := fresh.AllocsPerUpdate / base.AllocsPerUpdate
		if growth > maxAllocGrowth {
			fails = append(fails, fmt.Sprintf(
				"allocs_per_update grew %.2fx (%.1f -> %.1f; limit %.1fx)",
				growth, base.AllocsPerUpdate, fresh.AllocsPerUpdate, maxAllocGrowth))
		}
	}
	return fails
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		baseline       = flag.String("baseline", "BENCH_engine.json", "committed baseline record")
		fresh          = flag.String("fresh", "BENCH_engine.fresh.json", "freshly measured record")
		maxRateDrop    = flag.Float64("max-rate-drop", 0.25, "fail when updates_per_sec drops by more than this fraction")
		maxAllocGrowth = flag.Float64("max-alloc-growth", 2.0, "fail when allocs_per_update grows by more than this factor")
	)
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := load(*fresh)
	if err != nil {
		log.Fatal(err)
	}
	fails := check(base, cur, *maxRateDrop, *maxAllocGrowth)
	for _, f := range fails {
		log.Printf("FAIL: %s", f)
	}
	if len(fails) > 0 {
		os.Exit(1)
	}
	log.Printf("ok: rate %.0f/s (baseline %.0f/s), allocs/update %.1f (baseline %.1f)",
		cur.UpdatesPerSec, base.UpdatesPerSec, cur.AllocsPerUpdate, base.AllocsPerUpdate)
}
