package main

import "testing"

var testTh = thresholds{maxRateDrop: 0.25, maxAllocGrowth: 2.0, maxPushGrowth: 4.0, maxDropped: 0,
	maxWALOverhead: 0.10, maxRecoveryMS: 2000, maxObsOverhead: 0.03, minServeSpeedup: 3.0}

func TestCheckEngineThresholds(t *testing.T) {
	base := record{UpdatesPerSec: 100000, AllocsPerUpdate: 10}
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"unchanged", record{UpdatesPerSec: 100000, AllocsPerUpdate: 10}, 0},
		{"faster and leaner", record{UpdatesPerSec: 150000, AllocsPerUpdate: 3}, 0},
		{"within rate slack", record{UpdatesPerSec: 80000, AllocsPerUpdate: 10}, 0},
		{"rate regression", record{UpdatesPerSec: 70000, AllocsPerUpdate: 10}, 1},
		{"within alloc slack", record{UpdatesPerSec: 100000, AllocsPerUpdate: 19}, 0},
		{"alloc regression", record{UpdatesPerSec: 100000, AllocsPerUpdate: 25}, 1},
		{"both regressed", record{UpdatesPerSec: 50000, AllocsPerUpdate: 30}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, kind := range []string{"engine", "network"} {
				got := check(kind, base, c.fresh, testTh)
				if len(got) != c.fails {
					t.Fatalf("check(%s) = %v, want %d failures", kind, got, c.fails)
				}
			}
		})
	}
}

func TestCheckNetworkGates(t *testing.T) {
	// The relax / p95 / absolute-alloc gates are opt-in: zero thresholds
	// (as in testTh) must ignore arbitrarily bad fresh values.
	base := record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
		RelaxationsPerUpdate: 200, P95UpdateUS: 50}
	bad := record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
		RelaxationsPerUpdate: 10000, P95UpdateUS: 5000}
	if got := check("network", base, bad, testTh); len(got) != 0 {
		t.Fatalf("zero thresholds gated the optional fields: %v", got)
	}

	th := testTh
	th.maxRelaxGrowth = 2.0
	th.maxP95Growth = 4.0
	th.maxAllocs = 8
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"unchanged", base, 0},
		{"within relax slack", record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
			RelaxationsPerUpdate: 390, P95UpdateUS: 50}, 0},
		{"relax regression", record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
			RelaxationsPerUpdate: 500, P95UpdateUS: 50}, 1},
		{"within p95 slack", record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
			RelaxationsPerUpdate: 200, P95UpdateUS: 190}, 0},
		{"p95 regression", record{UpdatesPerSec: 100000, AllocsPerUpdate: 5,
			RelaxationsPerUpdate: 200, P95UpdateUS: 250}, 1},
		{"alloc cap ok", record{UpdatesPerSec: 100000, AllocsPerUpdate: 8,
			RelaxationsPerUpdate: 200, P95UpdateUS: 50}, 0},
		{"alloc cap exceeded", record{UpdatesPerSec: 100000, AllocsPerUpdate: 8.5,
			RelaxationsPerUpdate: 200, P95UpdateUS: 50}, 1},
		{"all three regressed", record{UpdatesPerSec: 100000, AllocsPerUpdate: 20,
			RelaxationsPerUpdate: 1000, P95UpdateUS: 1000}, 4}, // + relative alloc growth
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := check("network", base, c.fresh, th); len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}

	// A baseline without the new fields (older record) never divides by
	// zero or fails the growth gates, even with the gates on.
	oldBase := record{UpdatesPerSec: 100000, AllocsPerUpdate: 5}
	if got := check("network", oldBase, bad, th); len(got) != 0 {
		t.Fatalf("old baseline tripped the growth gates: %v", got)
	}
}

func TestCheckStreamThresholds(t *testing.T) {
	base := record{PushP95US: 100}
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"unchanged", record{PushP95US: 100}, 0},
		{"within latency slack", record{PushP95US: 390}, 0},
		{"latency regression", record{PushP95US: 500}, 1},
		{"healthy drop", record{PushP95US: 100, Dropped: 3}, 1},
		{"both regressed", record{PushP95US: 800, Dropped: 1}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := check("stream", base, c.fresh, testTh)
			if len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}
}

func TestCheckWALThresholds(t *testing.T) {
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"no overhead", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 100000, RecoveryMS: 50}, 0},
		{"within overhead slack", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 92000, RecoveryMS: 50}, 0},
		{"faster with log", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 110000, RecoveryMS: 50}, 0},
		{"overhead regression", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 85000, RecoveryMS: 50}, 1},
		{"slow recovery", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 100000, RecoveryMS: 5000}, 1},
		{"both regressed", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 50000, RecoveryMS: 9000}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The wal gate reads the fresh record only; an old baseline
			// must not mask it.
			got := check("wal", record{}, c.fresh, testTh)
			if len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}
}

func TestCheckObsThresholds(t *testing.T) {
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"no overhead", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 100000}, 0},
		{"within overhead slack", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 97500}, 0},
		{"faster instrumented", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 105000}, 0},
		{"overhead regression", record{BaseUpdatesPerSec: 100000, UpdatesPerSec: 95000}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Like wal, the obs gate reads the fresh record only.
			got := check("obs", record{}, c.fresh, testTh)
			if len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}
}

func TestCheckServeThresholds(t *testing.T) {
	healthy := func() record {
		return record{JSONUpdatesPerSec: 40000, BinaryUpdatesPerSec: 160000, Speedup: 4.0}
	}
	cases := []struct {
		name   string
		mutate func(*record)
		fails  int
	}{
		{"healthy", func(*record) {}, 0},
		{"at the floor", func(r *record) { r.BinaryUpdatesPerSec = 120000; r.Speedup = 3.0 }, 0},
		{"below the floor", func(r *record) { r.BinaryUpdatesPerSec = 80000; r.Speedup = 2.0 }, 1},
		{"json sheds", func(r *record) { r.ShedJSON = 3 }, 1},
		{"binary sheds", func(r *record) { r.ShedBinary = 1 }, 1},
		{"empty json phase", func(r *record) { r.JSONUpdatesPerSec = 0; r.Speedup = 0 }, 2},
		{"empty binary phase", func(r *record) { r.BinaryUpdatesPerSec = 0; r.Speedup = 0 }, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fresh := healthy()
			c.mutate(&fresh)
			// Like wal and obs, the serve gate reads the fresh record only.
			got := check("serve", record{}, fresh, testTh)
			if len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}
}

func TestCheckEmptyBaseline(t *testing.T) {
	// A zeroed baseline (e.g. a hand-initialized record) must never fail
	// the gate by division against zero.
	for _, kind := range []string{"engine", "network", "stream"} {
		if got := check(kind, record{}, record{UpdatesPerSec: 1, AllocsPerUpdate: 1, PushP95US: 1}, testTh); len(got) != 0 {
			t.Fatalf("check(%s) against empty baseline = %v, want none", kind, got)
		}
	}
	// A wal record with a zero base rate likewise cannot divide by zero.
	if got := check("wal", record{}, record{UpdatesPerSec: 1, RecoveryMS: 1}, testTh); len(got) != 0 {
		t.Fatalf("check(wal) with zero base rate = %v, want none", got)
	}
	if got := check("obs", record{}, record{UpdatesPerSec: 1}, testTh); len(got) != 0 {
		t.Fatalf("check(obs) with zero base rate = %v, want none", got)
	}
}

func TestCheckUnknownKind(t *testing.T) {
	if got := check("bogus", record{}, record{}, testTh); len(got) != 1 {
		t.Fatalf("unknown kind = %v, want 1 failure", got)
	}
}
