package main

import "testing"

func TestCheckThresholds(t *testing.T) {
	base := record{UpdatesPerSec: 100000, AllocsPerUpdate: 10}
	cases := []struct {
		name  string
		fresh record
		fails int
	}{
		{"unchanged", record{100000, 10}, 0},
		{"faster and leaner", record{150000, 3}, 0},
		{"within rate slack", record{80000, 10}, 0},
		{"rate regression", record{70000, 10}, 1},
		{"within alloc slack", record{100000, 19}, 0},
		{"alloc regression", record{100000, 25}, 1},
		{"both regressed", record{50000, 30}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := check(base, c.fresh, 0.25, 2.0)
			if len(got) != c.fails {
				t.Fatalf("check = %v, want %d failures", got, c.fails)
			}
		})
	}
}

func TestCheckEmptyBaseline(t *testing.T) {
	// A zeroed baseline (e.g. a hand-initialized record) must never fail
	// the gate by division against zero.
	if got := check(record{}, record{UpdatesPerSec: 1, AllocsPerUpdate: 1}, 0.25, 2.0); len(got) != 0 {
		t.Fatalf("check against empty baseline = %v, want none", got)
	}
}
