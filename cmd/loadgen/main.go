// Command loadgen drives a closed-loop MkNN serving workload: thousands
// of RandomWaypoint clients, each a live query session, pushed through
// batched location updates as fast as the target sustains, with optional
// data-update churn racing the queries. It reports a throughput/latency
// table from both sides — client-observed round-trips split per endpoint
// (update batches vs. object mutations) and the server's per-update
// serving histogram.
//
// Two targets:
//
//	loadgen -addr http://localhost:8080       # a running insqd
//	loadgen -sessions 5000 -duration 10s      # in-process engine (no HTTP)
//
// The in-process mode measures the engine floor; the HTTP mode adds the
// JSON/TCP serving stack on top.
//
// With -subscribe N the first N sessions are watched over the push
// stream (SSE against insqd, the broker directly in-process) and the run
// additionally reports insert-to-push latency: the time from issuing an
// object insert to the moment a subscriber receives the kNN delta it
// caused, the end-to-end number the continuous-query subsystem is
// accountable for. Enable churn (-churn) or there is nothing to push.
//
// With -network the clients are road-network sessions walking random
// routes on the same synthetic street grid the server built (-network-grid
// and the shared -space/-seed knobs must match the server's), updates flow
// through /v1/network/update, and churn mutates the site set instead of
// the plane objects.
//
// Against HTTP targets every request retries 503s (up to three times,
// honoring Retry-After) — a restarting insqd replaying its WAL answers
// 503 until recovery publishes, and the load should ride through that
// window rather than die. -report-errors prints a per-endpoint table of
// error statuses, retries taken and transport failures so the recovery
// window (or any other unhealthiness) is visible instead of folded into
// generic error counts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	insq "repro"
	"repro/internal/api"
	insqclient "repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/workload"
)

// target abstracts insqd-over-HTTP vs an in-process engine behind the
// operations the load loop needs.
type target interface {
	createSession(k int, rho float64, network bool) (uint64, error)
	closeSession(sid uint64) error
	update(entries []api.UpdateEntry) (*api.UpdateResponse, error)
	networkUpdate(entries []api.NetworkUpdateEntry) (*api.UpdateResponse, error)
	insertObject(x, y float64) (int, error)
	removeObject(id int) error
	insertNetworkObject(vertex int) (int, error)
	removeNetworkObject(vertex int) error
	// subscribe watches the sessions on the push stream, invoking onEvent
	// for every delta until the returned stop function runs.
	subscribe(sids []uint64, onEvent func(api.SessionEvent)) (stop func(), err error)
	stats() (*api.StatsResponse, error)
	close()
}

// pushTracker correlates object inserts with the pushed deltas they
// cause and records the insert-to-push latency of the first delivery.
// Events can outrun the insert response (the push races the HTTP reply),
// so arrivals for not-yet-registered ids park in early until the insert
// returns with the id.
type pushTracker struct {
	mu       sync.Mutex
	pending  map[int]time.Time // object id -> insert issue time
	early    map[int]time.Time // event arrival time for unknown ids
	hist     metrics.Histogram
	events   uint64 // data-cause events observed
	unpushed uint64 // inserts gone (removed or run over) without any push
}

func newPushTracker() *pushTracker {
	return &pushTracker{pending: make(map[int]time.Time), early: make(map[int]time.Time)}
}

// onEvent is the subscriber callback (any goroutine).
func (p *pushTracker) onEvent(ev api.SessionEvent) {
	if ev.Cause != "data" {
		return
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events++
	for _, id := range ev.Added {
		if t0, ok := p.pending[id]; ok {
			p.hist.Record(now.Sub(t0))
			delete(p.pending, id) // first push wins
		} else if _, ok := p.early[id]; !ok {
			p.early[id] = now
			if len(p.early) > 4096 { // deletes and foreign inserts accrue here; stay bounded
				clear(p.early)
			}
		}
	}
}

// registerInsert records an insert issued at t0 that produced object id.
func (p *pushTracker) registerInsert(id int, t0 time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t1, ok := p.early[id]; ok {
		p.hist.Record(t1.Sub(t0))
		delete(p.early, id)
		return
	}
	p.pending[id] = t0
}

// forget drops an object the churn loop removed again, so pending stays
// bounded by the live churn window; one still pending was never pushed
// (it entered no watched session's kNN before dying).
func (p *pushTracker) forget(id int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pending[id]; ok {
		p.unpushed++
		delete(p.pending, id)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr      = flag.String("addr", "", "insqd base URL (e.g. http://localhost:8080); empty runs an in-process engine")
		sessions  = flag.Int("sessions", 2000, "concurrent query sessions")
		k         = flag.Int("k", 5, "nearest neighbors per session")
		rho       = flag.Float64("rho", 1.6, "prefetch ratio")
		duration  = flag.Duration("duration", 5*time.Second, "load duration")
		batch     = flag.Int("batch", 64, "location updates per request")
		workers   = flag.Int("workers", 8, "concurrent client workers")
		stepLen   = flag.Float64("step", 5, "client movement per update")
		churn     = flag.Float64("churn", 0, "data updates per second (alternating insert/delete), 0 = off")
		network   = flag.Bool("network", false, "drive road-network sessions instead of plane sessions (server must run with a matching -network-grid)")
		netGrid   = flag.Int("network-grid", 64, "network mode: GxG street grid (must match the server)")
		netSites  = flag.Int("network-sites", 1000, "network mode, in-process: initial network data objects")
		subCount  = flag.Int("subscribe", 0, "watch the first N sessions on the push stream and measure insert-to-push latency (0 = off)")
		space     = flag.Float64("space", 10000, "side length of the data space (must match the server)")
		seed      = flag.Int64("seed", 42, "trajectory seed")
		objects   = flag.Int("objects", 50000, "in-process mode: synthetic data objects")
		shards    = flag.Int("shards", 8, "in-process mode: engine shards")
		repErrs   = flag.Bool("report-errors", false, "HTTP mode: print per-endpoint error statuses, 503 retries and transport failures after the run")
		ingest    = flag.Bool("ingest", false, "HTTP mode: send location updates over the binary streaming ingest protocol (POST /v1/ingest) instead of JSON requests; churn stays on the JSON endpoints")
		ingestTCP = flag.String("ingest-tcp", "", "with -ingest: dial this raw TCP ingest address (insqd -ingest-addr) instead of streaming over HTTP")
	)
	flag.Parse()
	if *sessions < 1 || *batch < 1 || *workers < 1 {
		log.Fatal("sessions, batch and workers must be >= 1")
	}

	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(*space, *space))
	// Network mode rebuilds the server's synthetic road network from the
	// same knobs (grid, space, seed), so generated trajectories and site
	// churn address vertices the server actually has.
	var roadNet *insq.RoadNetwork
	var roadSites []int
	if *network {
		g, err := workload.Network(*netGrid, bounds, *seed)
		if err != nil {
			log.Fatal(err)
		}
		roadNet = g
		roadSites, err = workload.NetworkSites(g, *netSites, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("road network: %d vertices, %d sites", g.NumVertices(), len(roadSites))
	}
	var tgt target
	var ht *httpTarget // non-nil in HTTP mode, for the error-table report
	if *addr != "" {
		ht = newHTTPTarget(*addr, *workers)
		tgt = ht
		if *ingest || *ingestTCP != "" {
			it, err := newIngestTarget(ht, *workers, *ingestTCP)
			if err != nil {
				log.Fatalf("ingest dial: %v", err)
			}
			tgt = it
			if *ingestTCP != "" {
				log.Printf("target: %s, updates via binary ingest on tcp %s (%d streams)", *addr, *ingestTCP, *workers)
			} else {
				log.Printf("target: %s, updates via binary ingest over HTTP (%d streams)", *addr, *workers)
			}
		} else {
			log.Printf("target: %s", *addr)
		}
	} else {
		log.Printf("target: in-process engine (%d objects, %d shards)", *objects, *shards)
		e, err := insq.NewEngine(insq.EngineConfig{
			Shards:       *shards,
			Bounds:       bounds,
			Objects:      insq.UniformPoints(*objects, bounds, *seed),
			Network:      roadNet,
			NetworkSites: roadSites,
		})
		if err != nil {
			log.Fatal(err)
		}
		tgt = inprocTarget{e}
	}
	defer tgt.close()

	// One session per synthetic client, partitioned over the workers.
	log.Printf("creating %d sessions (k=%d, rho=%g)...", *sessions, *k, *rho)
	sids := make([]uint64, *sessions)
	if err := parallelFor(*workers, *sessions, func(i int) error {
		sid, err := tgt.createSession(*k, *rho, *network)
		sids[i] = sid
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Precomputed cyclic trajectories keep the hot loop allocation-light:
	// random-waypoint walks in the plane, random-walk routes sampled at
	// -step spacing on the road network.
	const trajSteps = 256
	var trajs [][]insq.Point
	var netTrajs [][]insq.NetworkPosition
	if *network {
		netTrajs = make([][]insq.NetworkPosition, *sessions)
		rng := rand.New(rand.NewSource(*seed ^ 0x70ad))
		for i := range netTrajs {
			route, err := insq.RandomWalkRoute(roadNet, rng.Intn(roadNet.NumVertices()),
				float64(trajSteps)**stepLen, *seed+int64(i))
			if err != nil {
				log.Fatal(err)
			}
			steps := make([]insq.NetworkPosition, trajSteps)
			for j := range steps {
				steps[j] = route.PositionAt(math.Mod(float64(j)**stepLen, route.Length()))
			}
			netTrajs[i] = steps
		}
	} else {
		trajs = make([][]insq.Point, *sessions)
		for i := range trajs {
			trajs[i] = insq.RandomWaypoint(bounds, trajSteps, *stepLen, *seed+int64(i))
		}
	}

	// Push subscription: watch the first -subscribe sessions and track
	// insert-to-push latency through the churn loop below.
	var tracker *pushTracker
	stopSub := func() {}
	if *subCount > 0 {
		n := min(*subCount, *sessions)
		tracker = newPushTracker()
		stop, err := tgt.subscribe(sids[:n], tracker.onEvent)
		if err != nil {
			log.Fatalf("subscribe: %v", err)
		}
		stopSub = stop
		log.Printf("subscribed to %d sessions on the push stream", n)
		if *churn == 0 {
			log.Print("warning: -subscribe without -churn measures nothing (no data updates to push)")
		}
	}

	stopChurn := make(chan struct{})
	churnCount := 0
	var churnHist metrics.Histogram
	var churnWG sync.WaitGroup
	if *churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			if *network {
				churnCount = runNetworkChurn(tgt, *churn, roadNet, roadSites, *seed, stopChurn, &churnHist, tracker)
			} else {
				churnCount = runChurn(tgt, *churn, bounds, *seed, stopChurn, &churnHist, tracker)
			}
		}()
	}

	log.Printf("driving for %v (%d workers, batch %d)...", *duration, *workers, *batch)
	type workerResult struct {
		updates, batches, errors int
		hist                     metrics.Histogram
	}
	results := make([]workerResult, *workers)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			var mine []int // session indices owned by this worker
			for i := w; i < *sessions; i += *workers {
				mine = append(mine, i)
			}
			if len(mine) == 0 { // more workers than sessions
				return
			}
			entries := make([]api.UpdateEntry, 0, *batch)
			netEntries := make([]api.NetworkUpdateEntry, 0, *batch)
			for step := 0; time.Now().Before(deadline); step++ {
				for lo := 0; lo < len(mine); lo += *batch {
					hi := min(lo+*batch, len(mine))
					var resp *api.UpdateResponse
					var err error
					t0 := time.Now()
					if *network {
						netEntries = netEntries[:0]
						for _, i := range mine[lo:hi] {
							p := netTrajs[i][step%trajSteps]
							netEntries = append(netEntries, api.NetworkUpdateEntry{Session: sids[i], U: p.U, V: p.V, T: p.T})
						}
						resp, err = tgt.networkUpdate(netEntries)
					} else {
						entries = entries[:0]
						for _, i := range mine[lo:hi] {
							p := trajs[i][step%trajSteps]
							entries = append(entries, api.UpdateEntry{Session: sids[i], X: p.X, Y: p.Y})
						}
						resp, err = tgt.update(entries)
					}
					res.batches++
					if err != nil {
						res.errors++
						continue
					}
					// Successful round-trips only: failed requests (up to
					// the client timeout) would skew the RTT quantiles.
					res.hist.Record(time.Since(t0))
					for _, r := range resp.Results {
						if r.Error != "" {
							res.errors++
						} else {
							res.updates++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopChurn)
	churnWG.Wait()
	if tracker != nil {
		// Let in-flight pushes land before reading the histograms.
		time.Sleep(250 * time.Millisecond)
	}
	stopSub()

	var total workerResult
	for i := range results {
		total.updates += results[i].updates
		total.batches += results[i].batches
		total.errors += results[i].errors
		total.hist.Merge(&results[i].hist)
	}

	fmt.Printf("\n%-22s %v\n", "elapsed", elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %d\n", "sessions", *sessions)
	fmt.Printf("%-22s %d\n", "updates ok", total.updates)
	fmt.Printf("%-22s %d\n", "update errors", total.errors)
	fmt.Printf("%-22s %d\n", "batch requests", total.batches)
	fmt.Printf("%-22s %d\n", "data updates", churnCount)
	fmt.Printf("%-22s %.0f\n", "updates/sec", float64(total.updates)/elapsed.Seconds())
	// Per-endpoint client latency: update batches and object mutations hit
	// different server paths (shard fan-out vs. copy-on-write publish), so
	// one merged histogram would hide whichever is slower.
	fmt.Printf("client update RTT      %v\n", total.hist.Summary())
	if churnHist.Count() > 0 {
		fmt.Printf("client mutation RTT    %v\n", churnHist.Summary())
	}
	if tracker != nil {
		tracker.mu.Lock()
		push := tracker.hist.Summary()
		events, unmatched := tracker.events, tracker.unpushed+uint64(len(tracker.pending))
		tracker.mu.Unlock()
		fmt.Printf("push events            %d\n", events)
		fmt.Printf("insert-to-push         %v (%d inserts never pushed: outside every watched kNN)\n", push, unmatched)
	}
	if st, err := tgt.stats(); err != nil {
		log.Printf("stats: %v", err)
	} else {
		if st.Version != "" {
			fmt.Printf("server version         %s (%s, rev %s, up %.0fs)\n",
				st.Version, st.GoVersion, st.Revision, st.UptimeSec)
		}
		fmt.Printf("server updates/sec     %.0f\n", st.UpdatesPerSec)
		fmt.Printf("server epoch           %d (%d live index snapshots)\n", st.Epoch, st.Snapshots)
		fmt.Printf("server update latency  n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus\n",
			st.Latency.Count, st.Latency.MeanUS, st.Latency.P50US, st.Latency.P95US, st.Latency.P99US, st.Latency.MaxUS)
		fmt.Printf("server counters        %v\n", st.Counters)
		fmt.Printf("server recompute rate  %.2f%% of updates\n",
			100*float64(st.Counters.Recomputations)/float64(max(st.Counters.Timestamps, 1)))
		if st.NetLandmarks > 0 {
			fmt.Printf("server network ALT     landmarks=%d proj_rebuilds=%d relaxations/update=%.1f\n",
				st.NetLandmarks, st.NetProjRebuilds,
				float64(st.Counters.EdgeRelaxations)/float64(max(st.Counters.Timestamps, 1)))
		}
		if s := st.Stream; s.Published > 0 || s.Subscribers > 0 {
			fmt.Printf("server stream          published=%d delivered=%d coalesced=%d dropped=%d\n",
				s.Published, s.Delivered, s.Coalesced, s.Dropped)
		}
		if ig := st.Ingest; ig != nil {
			fmt.Printf("server ingest          conns=%d frames=%d batches=%d coalesce=%.2fx bytes_in=%d bytes_out=%d\n",
				ig.Connections, ig.FramesTotal, ig.Batches, ig.CoalesceFactor, ig.BytesIn, ig.BytesOut)
		}
	}
	if *repErrs {
		if ht != nil {
			if tbl := ht.errs.report(); tbl != "" {
				fmt.Printf("http errors by endpoint\n%s", tbl)
			} else {
				fmt.Println("http errors by endpoint: none")
			}
		} else {
			log.Print("-report-errors: in-process target, no HTTP layer to report on")
		}
	}
	// Release the sessions (after the stats read — server counters cover
	// live sessions) so repeated runs against one long-running insqd don't
	// accumulate dead sessions there. Keep going past individual failures:
	// one transient error must not leak a worker's remaining sessions.
	var closeFailed atomic.Int64
	parallelFor(*workers, *sessions, func(i int) error {
		if err := tgt.closeSession(sids[i]); err != nil {
			closeFailed.Add(1)
		}
		return nil
	})
	if n := closeFailed.Load(); n > 0 {
		log.Printf("failed to close %d sessions", n)
	}

	if total.errors > 0 {
		log.Fatalf("%d update errors", total.errors)
	}
}

// parallelFor runs fn(0..n-1) on workers goroutines and returns the first
// error.
func parallelFor(workers, n int, fn func(i int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChurn applies paced data updates until stop closes: inserts random
// objects and removes them again once enough have accumulated, so the
// object count stays near its initial value. Every mutation's round-trip
// is recorded in hist (the object-mutation side of the per-endpoint
// latency split); inserts are registered with the push tracker when one
// is attached.
func runChurn(tgt target, perSec float64, bounds insq.Rect, seed int64, stop <-chan struct{}, hist *metrics.Histogram, tracker *pushTracker) int {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	interval := time.Duration(float64(time.Second) / perSec)
	if interval <= 0 { // perSec > 1e9 truncates to zero, which NewTicker rejects
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var inserted []int
	n := 0 // applied updates only; failures surface as log lines
	remove := func(id int) {
		t0 := time.Now()
		if err := tgt.removeObject(id); err != nil {
			log.Printf("churn remove %d: %v", id, err)
			return
		}
		hist.Record(time.Since(t0))
		if tracker != nil {
			tracker.forget(id)
		}
		n++
	}
	for {
		select {
		case <-stop:
			// Drain pending inserts so repeated runs against one server
			// keep the object count at its initial value.
			for _, id := range inserted {
				remove(id)
			}
			return n
		case <-tick.C:
		}
		if len(inserted) > 32 {
			id := inserted[0]
			inserted = inserted[1:]
			remove(id)
		} else {
			x := bounds.Min.X + rng.Float64()*(bounds.Max.X-bounds.Min.X)
			y := bounds.Min.Y + rng.Float64()*(bounds.Max.Y-bounds.Min.Y)
			t0 := time.Now()
			id, err := tgt.insertObject(x, y)
			if err != nil {
				log.Printf("churn insert: %v", err)
			} else {
				hist.Record(time.Since(t0))
				if tracker != nil {
					tracker.registerInsert(id, t0)
				}
				inserted = append(inserted, id)
				n++
			}
		}
	}
}

// runNetworkChurn is runChurn for the road-network side: it inserts data
// objects at random free vertices (outside the initial site set) and
// removes them again once enough have accumulated, keeping the site count
// near its initial value.
func runNetworkChurn(tgt target, perSec float64, g *insq.RoadNetwork, initial []int, seed int64, stop <-chan struct{}, hist *metrics.Histogram, tracker *pushTracker) int {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	interval := time.Duration(float64(time.Second) / perSec)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	taken := make(map[int]bool, len(initial))
	for _, v := range initial {
		taken[v] = true
	}
	var inserted []int
	n := 0
	remove := func(v int) {
		t0 := time.Now()
		if err := tgt.removeNetworkObject(v); err != nil {
			log.Printf("churn remove site %d: %v", v, err)
			return
		}
		hist.Record(time.Since(t0))
		delete(taken, v)
		if tracker != nil {
			tracker.forget(v)
		}
		n++
	}
	for {
		select {
		case <-stop:
			for _, v := range inserted {
				remove(v)
			}
			return n
		case <-tick.C:
		}
		if len(inserted) > 32 {
			v := inserted[0]
			inserted = inserted[1:]
			remove(v)
		} else {
			v := rng.Intn(g.NumVertices())
			for taken[v] {
				v = rng.Intn(g.NumVertices())
			}
			t0 := time.Now()
			id, err := tgt.insertNetworkObject(v)
			if err != nil {
				log.Printf("churn insert site %d: %v", v, err)
			} else {
				hist.Record(time.Since(t0))
				taken[v] = true
				if tracker != nil {
					tracker.registerInsert(id, t0)
				}
				inserted = append(inserted, v)
				n++
			}
		}
	}
}

// inprocTarget serves the load loop straight from an engine, bypassing
// HTTP; it measures the engine floor.
type inprocTarget struct {
	e *insq.Engine
}

func (t inprocTarget) createSession(k int, rho float64, network bool) (uint64, error) {
	if network {
		sid, err := t.e.CreateNetworkSession(k, rho)
		return uint64(sid), err
	}
	sid, err := t.e.CreateSession(k, rho)
	return uint64(sid), err
}

func (t inprocTarget) closeSession(sid uint64) error {
	return t.e.CloseSession(insq.SessionID(sid))
}

func (t inprocTarget) update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	results, err := t.e.UpdateBatch(api.NewLocationUpdates(entries))
	if err != nil {
		return nil, err
	}
	resp := api.NewUpdateResponse(results)
	return &resp, nil
}

func (t inprocTarget) networkUpdate(entries []api.NetworkUpdateEntry) (*api.UpdateResponse, error) {
	results, err := t.e.UpdateNetworkBatch(api.NewNetworkLocationUpdates(entries))
	if err != nil {
		return nil, err
	}
	resp := api.NewUpdateResponse(results)
	return &resp, nil
}

func (t inprocTarget) insertObject(x, y float64) (int, error) {
	return t.e.InsertObject(insq.Pt(x, y))
}

func (t inprocTarget) removeObject(id int) error { return t.e.RemoveObject(id) }

func (t inprocTarget) insertNetworkObject(vertex int) (int, error) {
	return t.e.InsertNetworkObject(vertex)
}

func (t inprocTarget) removeNetworkObject(vertex int) error {
	return t.e.RemoveNetworkObject(vertex)
}

// subscribe consumes the engine's broker directly — the push-latency
// floor without the SSE/TCP stack.
func (t inprocTarget) subscribe(sids []uint64, onEvent func(api.SessionEvent)) (func(), error) {
	sub := t.e.Stream().Subscribe(0, sids...)
	if sub == nil {
		return nil, errors.New("stream broker closed")
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-sub.Done():
				return
			case <-sub.Wake():
				for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
					onEvent(api.NewSessionEvent(ev))
				}
			}
		}
	}()
	return func() {
		close(stop)
		sub.Close()
		<-done
	}, nil
}

func (t inprocTarget) stats() (*api.StatsResponse, error) {
	st, err := t.e.Stats()
	if err != nil {
		return nil, err
	}
	resp := api.NewStatsResponse(st)
	resp.Version, resp.GoVersion, resp.Revision = obs.Build()
	return &resp, nil
}

func (t inprocTarget) close() { t.e.Close() }

// errStats tallies per-endpoint HTTP failures and transient-status
// retries so recovery-window unavailability (503 while insqd replays its
// WAL or runs degraded without durability) and admission-control shed
// (429 at the shard queue high watermark) are visible in the
// -report-errors table instead of vanishing into generic error counts.
type errStats struct {
	mu      sync.Mutex
	counts  map[string]map[int]uint64 // endpoint -> status -> responses
	retries map[string]uint64         // endpoint -> 503 retries taken
	netErrs map[string]uint64         // endpoint -> transport errors
}

func newErrStats() *errStats {
	return &errStats{
		counts:  make(map[string]map[int]uint64),
		retries: make(map[string]uint64),
		netErrs: make(map[string]uint64),
	}
}

func (s *errStats) record(endpoint string, status int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.counts[endpoint]
	if m == nil {
		m = make(map[int]uint64)
		s.counts[endpoint] = m
	}
	m[status]++
}

// recordCode folds a binary-ingest frame status into the same table as
// the HTTP statuses, so shed/degraded aggregates cover both protocols.
func (s *errStats) recordCode(endpoint string, code api.ErrorCode) {
	status := http.StatusInternalServerError
	switch code {
	case api.CodeOverloaded:
		status = http.StatusTooManyRequests
	case api.CodeDegraded, api.CodeUnavailable:
		status = http.StatusServiceUnavailable
	}
	s.record(endpoint, status)
}

func (s *errStats) retry(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retries[endpoint]++
}

func (s *errStats) netErr(endpoint string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.netErrs[endpoint]++
}

// report renders one line per endpoint with its error statuses, retries
// and transport failures; empty when every request succeeded first try.
func (s *errStats) report() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	endpoints := make(map[string]bool)
	for ep := range s.counts {
		endpoints[ep] = true
	}
	for ep := range s.retries {
		endpoints[ep] = true
	}
	for ep := range s.netErrs {
		endpoints[ep] = true
	}
	ordered := make([]string, 0, len(endpoints))
	for ep := range endpoints {
		ordered = append(ordered, ep)
	}
	sort.Strings(ordered)
	var b strings.Builder
	for _, ep := range ordered {
		fmt.Fprintf(&b, "  %-28s", ep)
		statuses := make([]int, 0, len(s.counts[ep]))
		for code := range s.counts[ep] {
			statuses = append(statuses, code)
		}
		sort.Ints(statuses)
		for _, code := range statuses {
			fmt.Fprintf(&b, " %dx%d", s.counts[ep][code], code)
		}
		if n := s.retries[ep]; n > 0 {
			fmt.Fprintf(&b, " retries=%d", n)
		}
		if n := s.netErrs[ep]; n > 0 {
			fmt.Fprintf(&b, " transport=%d", n)
		}
		b.WriteByte('\n')
	}
	// Aggregate rows for the two transient backpressure signals, so a run
	// that rode through shed or degraded windows shows the totals at a
	// glance without summing per-endpoint counts.
	var shed, degraded uint64
	for _, m := range s.counts {
		shed += m[http.StatusTooManyRequests]
		degraded += m[http.StatusServiceUnavailable]
	}
	if shed > 0 {
		fmt.Fprintf(&b, "  %-28s %d responses\n", "shed (429)", shed)
	}
	if degraded > 0 {
		fmt.Fprintf(&b, "  %-28s %d responses\n", "degraded/unavailable (503)", degraded)
	}
	return b.String()
}

// httpTarget talks to a running insqd through the shared client
// package, with the per-endpoint error table wired into its hooks.
type httpTarget struct {
	c    *insqclient.Client
	errs *errStats
}

func newHTTPTarget(base string, workers int) *httpTarget {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = workers + 2
	errs := newErrStats()
	c := insqclient.New(base, insqclient.Options{
		HTTPClient: &http.Client{Transport: tr, Timeout: 30 * time.Second},
		OnStatus:   errs.record,
		OnRetry:    errs.retry,
		OnNetErr:   errs.netErr,
	})
	return &httpTarget{c: c, errs: errs}
}

func (t *httpTarget) createSession(k int, rho float64, network bool) (uint64, error) {
	return t.c.CreateSession(k, rho, network)
}

func (t *httpTarget) closeSession(sid uint64) error { return t.c.CloseSession(sid) }

func (t *httpTarget) update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	return t.c.Update(entries)
}

func (t *httpTarget) networkUpdate(entries []api.NetworkUpdateEntry) (*api.UpdateResponse, error) {
	return t.c.NetworkUpdate(entries)
}

func (t *httpTarget) insertObject(x, y float64) (int, error) { return t.c.AddObject(x, y) }

func (t *httpTarget) removeObject(id int) error { return t.c.RemoveObject(id) }

func (t *httpTarget) insertNetworkObject(vertex int) (int, error) {
	return t.c.AddNetworkObject(vertex)
}

func (t *httpTarget) removeNetworkObject(vertex int) error {
	return t.c.RemoveNetworkObject(vertex)
}

func (t *httpTarget) subscribe(sids []uint64, onEvent func(api.SessionEvent)) (func(), error) {
	return t.c.Subscribe(sids, onEvent)
}

func (t *httpTarget) stats() (*api.StatsResponse, error) { return t.c.Stats() }

func (t *httpTarget) close() {}

// ingestTarget routes location updates over binary streaming ingest
// connections (one per worker, checked out of a pool) while mutations,
// sessions and stats stay on the JSON endpoints. Each update batch is a
// synchronous Call — the per-request shape with the HTTP/JSON overhead
// replaced by one frame and one ack.
type ingestTarget struct {
	*httpTarget
	streams chan *insqclient.Ingest
}

func newIngestTarget(ht *httpTarget, workers int, tcpAddr string) (*ingestTarget, error) {
	t := &ingestTarget{httpTarget: ht, streams: make(chan *insqclient.Ingest, workers)}
	for i := 0; i < workers; i++ {
		var ing *insqclient.Ingest
		var err error
		if tcpAddr != "" {
			ing, err = insqclient.DialIngestTCP(context.Background(), tcpAddr, 8)
		} else {
			ing, err = ht.c.DialIngest(context.Background(), 8)
		}
		if err != nil {
			t.close()
			return nil, err
		}
		t.streams <- ing
	}
	return t, nil
}

// callIngest runs one batch through a pooled stream and adapts the ack
// to the JSON response shape the load loop consumes.
func (t *ingestTarget) callIngest(endpoint string, b api.IngestBatch) (*api.UpdateResponse, error) {
	b.WantResults = true
	ing := <-t.streams
	ack, err := ing.Call(b)
	t.streams <- ing
	if err != nil {
		t.errs.netErr(endpoint)
		return nil, err
	}
	if ack.Code != api.CodeOK {
		t.errs.recordCode(endpoint, ack.Code)
		return nil, fmt.Errorf("%s: %s: %s", endpoint, ack.Code, ack.Message)
	}
	resp := &api.UpdateResponse{Results: make([]api.UpdateResultEntry, len(ack.Results))}
	for i, r := range ack.Results {
		entry := api.UpdateResultEntry{Session: r.Session, KNN: r.KNN}
		if r.Code != api.CodeOK {
			entry.Code = r.Code
			entry.Error = string(r.Code)
		}
		resp.Results[i] = entry
	}
	return resp, nil
}

func (t *ingestTarget) update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	return t.callIngest("INGEST update", api.IngestBatch{Updates: entries})
}

func (t *ingestTarget) networkUpdate(entries []api.NetworkUpdateEntry) (*api.UpdateResponse, error) {
	return t.callIngest("INGEST network/update", api.IngestBatch{NetworkUpdates: entries})
}

func (t *ingestTarget) close() {
	for {
		select {
		case ing := <-t.streams:
			ing.Close()
		default:
			return
		}
	}
}
