// Command loadgen drives a closed-loop MkNN serving workload: thousands
// of RandomWaypoint clients, each a live query session, pushed through
// batched location updates as fast as the target sustains, with optional
// data-update churn racing the queries. It reports a throughput/latency
// table from both sides: client-observed batch round-trips and the
// server's per-update serving histogram.
//
// Two targets:
//
//	loadgen -addr http://localhost:8080       # a running insqd
//	loadgen -sessions 5000 -duration 10s      # in-process engine (no HTTP)
//
// The in-process mode measures the engine floor; the HTTP mode adds the
// JSON/TCP serving stack on top.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	insq "repro"
	"repro/internal/api"
	"repro/internal/metrics"
)

// target abstracts insqd-over-HTTP vs an in-process engine behind the
// operations the load loop needs.
type target interface {
	createSession(k int, rho float64) (uint64, error)
	closeSession(sid uint64) error
	update(entries []api.UpdateEntry) (*api.UpdateResponse, error)
	insertObject(x, y float64) (int, error)
	removeObject(id int) error
	stats() (*api.StatsResponse, error)
	close()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr     = flag.String("addr", "", "insqd base URL (e.g. http://localhost:8080); empty runs an in-process engine")
		sessions = flag.Int("sessions", 2000, "concurrent query sessions")
		k        = flag.Int("k", 5, "nearest neighbors per session")
		rho      = flag.Float64("rho", 1.6, "prefetch ratio")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		batch    = flag.Int("batch", 64, "location updates per request")
		workers  = flag.Int("workers", 8, "concurrent client workers")
		stepLen  = flag.Float64("step", 5, "client movement per update")
		churn    = flag.Float64("churn", 0, "data updates per second (alternating insert/delete), 0 = off")
		space    = flag.Float64("space", 10000, "side length of the data space (must match the server)")
		seed     = flag.Int64("seed", 42, "trajectory seed")
		objects  = flag.Int("objects", 50000, "in-process mode: synthetic data objects")
		shards   = flag.Int("shards", 8, "in-process mode: engine shards")
	)
	flag.Parse()
	if *sessions < 1 || *batch < 1 || *workers < 1 {
		log.Fatal("sessions, batch and workers must be >= 1")
	}

	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(*space, *space))
	var tgt target
	if *addr != "" {
		tgt = newHTTPTarget(*addr, *workers)
		log.Printf("target: %s", *addr)
	} else {
		log.Printf("target: in-process engine (%d objects, %d shards)", *objects, *shards)
		e, err := insq.NewEngine(insq.EngineConfig{
			Shards:  *shards,
			Bounds:  bounds,
			Objects: insq.UniformPoints(*objects, bounds, *seed),
		})
		if err != nil {
			log.Fatal(err)
		}
		tgt = inprocTarget{e}
	}
	defer tgt.close()

	// One session per synthetic client, partitioned over the workers.
	log.Printf("creating %d sessions (k=%d, rho=%g)...", *sessions, *k, *rho)
	sids := make([]uint64, *sessions)
	if err := parallelFor(*workers, *sessions, func(i int) error {
		sid, err := tgt.createSession(*k, *rho)
		sids[i] = sid
		return err
	}); err != nil {
		log.Fatal(err)
	}

	// Precomputed cyclic trajectories keep the hot loop allocation-light.
	const trajSteps = 256
	trajs := make([][]insq.Point, *sessions)
	for i := range trajs {
		trajs[i] = insq.RandomWaypoint(bounds, trajSteps, *stepLen, *seed+int64(i))
	}

	stopChurn := make(chan struct{})
	churnCount := 0
	var churnWG sync.WaitGroup
	if *churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			churnCount = runChurn(tgt, *churn, bounds, *seed, stopChurn)
		}()
	}

	log.Printf("driving for %v (%d workers, batch %d)...", *duration, *workers, *batch)
	type workerResult struct {
		updates, batches, errors int
		hist                     metrics.Histogram
	}
	results := make([]workerResult, *workers)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			var mine []int // session indices owned by this worker
			for i := w; i < *sessions; i += *workers {
				mine = append(mine, i)
			}
			if len(mine) == 0 { // more workers than sessions
				return
			}
			entries := make([]api.UpdateEntry, 0, *batch)
			for step := 0; time.Now().Before(deadline); step++ {
				for lo := 0; lo < len(mine); lo += *batch {
					hi := min(lo+*batch, len(mine))
					entries = entries[:0]
					for _, i := range mine[lo:hi] {
						p := trajs[i][step%trajSteps]
						entries = append(entries, api.UpdateEntry{Session: sids[i], X: p.X, Y: p.Y})
					}
					t0 := time.Now()
					resp, err := tgt.update(entries)
					res.batches++
					if err != nil {
						res.errors++
						continue
					}
					// Successful round-trips only: failed requests (up to
					// the client timeout) would skew the RTT quantiles.
					res.hist.Record(time.Since(t0))
					for _, r := range resp.Results {
						if r.Error != "" {
							res.errors++
						} else {
							res.updates++
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopChurn)
	churnWG.Wait()

	var total workerResult
	for i := range results {
		total.updates += results[i].updates
		total.batches += results[i].batches
		total.errors += results[i].errors
		total.hist.Merge(&results[i].hist)
	}

	fmt.Printf("\n%-22s %v\n", "elapsed", elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %d\n", "sessions", *sessions)
	fmt.Printf("%-22s %d\n", "updates ok", total.updates)
	fmt.Printf("%-22s %d\n", "update errors", total.errors)
	fmt.Printf("%-22s %d\n", "batch requests", total.batches)
	fmt.Printf("%-22s %d\n", "data updates", churnCount)
	fmt.Printf("%-22s %.0f\n", "updates/sec", float64(total.updates)/elapsed.Seconds())
	cl := total.hist.Summary()
	fmt.Printf("client batch RTT       %v\n", cl)
	if st, err := tgt.stats(); err != nil {
		log.Printf("stats: %v", err)
	} else {
		fmt.Printf("server updates/sec     %.0f\n", st.UpdatesPerSec)
		fmt.Printf("server epoch           %d (%d live index snapshots)\n", st.Epoch, st.Snapshots)
		fmt.Printf("server update latency  n=%d mean=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus\n",
			st.Latency.Count, st.Latency.MeanUS, st.Latency.P50US, st.Latency.P95US, st.Latency.P99US, st.Latency.MaxUS)
		fmt.Printf("server counters        %v\n", st.Counters)
		fmt.Printf("server recompute rate  %.2f%% of updates\n",
			100*float64(st.Counters.Recomputations)/float64(max(st.Counters.Timestamps, 1)))
	}
	// Release the sessions (after the stats read — server counters cover
	// live sessions) so repeated runs against one long-running insqd don't
	// accumulate dead sessions there. Keep going past individual failures:
	// one transient error must not leak a worker's remaining sessions.
	var closeFailed atomic.Int64
	parallelFor(*workers, *sessions, func(i int) error {
		if err := tgt.closeSession(sids[i]); err != nil {
			closeFailed.Add(1)
		}
		return nil
	})
	if n := closeFailed.Load(); n > 0 {
		log.Printf("failed to close %d sessions", n)
	}

	if total.errors > 0 {
		log.Fatalf("%d update errors", total.errors)
	}
}

// parallelFor runs fn(0..n-1) on workers goroutines and returns the first
// error.
func parallelFor(workers, n int, fn func(i int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runChurn applies paced data updates until stop closes: inserts random
// objects and removes them again once enough have accumulated, so the
// object count stays near its initial value.
func runChurn(tgt target, perSec float64, bounds insq.Rect, seed int64, stop <-chan struct{}) int {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	interval := time.Duration(float64(time.Second) / perSec)
	if interval <= 0 { // perSec > 1e9 truncates to zero, which NewTicker rejects
		interval = time.Nanosecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var inserted []int
	n := 0 // applied updates only; failures surface as log lines
	for {
		select {
		case <-stop:
			// Drain pending inserts so repeated runs against one server
			// keep the object count at its initial value.
			for _, id := range inserted {
				if err := tgt.removeObject(id); err != nil {
					log.Printf("churn drain %d: %v", id, err)
				} else {
					n++
				}
			}
			return n
		case <-tick.C:
		}
		if len(inserted) > 32 {
			id := inserted[0]
			inserted = inserted[1:]
			if err := tgt.removeObject(id); err != nil {
				log.Printf("churn remove %d: %v", id, err)
			} else {
				n++
			}
		} else {
			x := bounds.Min.X + rng.Float64()*(bounds.Max.X-bounds.Min.X)
			y := bounds.Min.Y + rng.Float64()*(bounds.Max.Y-bounds.Min.Y)
			id, err := tgt.insertObject(x, y)
			if err != nil {
				log.Printf("churn insert: %v", err)
			} else {
				inserted = append(inserted, id)
				n++
			}
		}
	}
}

// inprocTarget serves the load loop straight from an engine, bypassing
// HTTP; it measures the engine floor.
type inprocTarget struct {
	e *insq.Engine
}

func (t inprocTarget) createSession(k int, rho float64) (uint64, error) {
	sid, err := t.e.CreateSession(k, rho)
	return uint64(sid), err
}

func (t inprocTarget) closeSession(sid uint64) error {
	return t.e.CloseSession(insq.SessionID(sid))
}

func (t inprocTarget) update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	results, err := t.e.UpdateBatch(api.NewLocationUpdates(entries))
	if err != nil {
		return nil, err
	}
	resp := api.NewUpdateResponse(results)
	return &resp, nil
}

func (t inprocTarget) insertObject(x, y float64) (int, error) {
	return t.e.InsertObject(insq.Pt(x, y))
}

func (t inprocTarget) removeObject(id int) error { return t.e.RemoveObject(id) }

func (t inprocTarget) stats() (*api.StatsResponse, error) {
	st, err := t.e.Stats()
	if err != nil {
		return nil, err
	}
	resp := api.NewStatsResponse(st)
	return &resp, nil
}

func (t inprocTarget) close() { t.e.Close() }

// httpTarget talks to a running insqd.
type httpTarget struct {
	base string
	c    *http.Client
}

func newHTTPTarget(base string, workers int) *httpTarget {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = workers + 2
	return &httpTarget{base: base, c: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

func (t *httpTarget) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := t.c.Post(t.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		var e api.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e)
		return fmt.Errorf("%s: status %d: %s", path, r.StatusCode, e.Error)
	}
	if resp != nil {
		return json.NewDecoder(r.Body).Decode(resp)
	}
	return nil
}

func (t *httpTarget) createSession(k int, rho float64) (uint64, error) {
	var resp api.CreateSessionResponse
	err := t.post("/v1/sessions", api.CreateSessionRequest{K: k, Rho: rho}, &resp)
	return resp.Session, err
}

func (t *httpTarget) closeSession(sid uint64) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%d", t.base, sid), nil)
	if err != nil {
		return err
	}
	r, err := t.c.Do(req)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		return fmt.Errorf("close session %d: status %d", sid, r.StatusCode)
	}
	return nil
}

func (t *httpTarget) update(entries []api.UpdateEntry) (*api.UpdateResponse, error) {
	var resp api.UpdateResponse
	if err := t.post("/v1/update", api.UpdateRequest{Updates: entries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTarget) insertObject(x, y float64) (int, error) {
	var resp api.ObjectResponse
	err := t.post("/v1/objects", api.ObjectRequest{X: x, Y: y}, &resp)
	return resp.ID, err
}

func (t *httpTarget) removeObject(id int) error {
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/objects/%d", t.base, id), nil)
	if err != nil {
		return err
	}
	r, err := t.c.Do(req)
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		return fmt.Errorf("delete object %d: status %d", id, r.StatusCode)
	}
	return nil
}

func (t *httpTarget) stats() (*api.StatsResponse, error) {
	r, err := t.c.Get(t.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		var e api.ErrorResponse
		json.NewDecoder(r.Body).Decode(&e)
		return nil, fmt.Errorf("/v1/stats: status %d: %s", r.StatusCode, e.Error)
	}
	var resp api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *httpTarget) close() {}
