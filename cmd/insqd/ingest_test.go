package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	insq "repro"
	"repro/internal/api"
	insqclient "repro/internal/client"
	"repro/internal/geom"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/workload"
)

// newIngestServer boots a plane+network engine behind internal/server
// with the given coalesce window, plus a raw TCP ingest listener.
func newIngestServer(t *testing.T, window time.Duration) (*httptest.Server, net.Listener, *insq.Engine) {
	t.Helper()
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	g, err := workload.Network(8, bounds, 7)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:       4,
		Bounds:       bounds,
		Objects:      insq.UniformPoints(300, bounds, 2),
		Network:      g,
		NetworkSites: sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := server.New(e, server.Options{CoalesceWindow: window})
	ts := httptest.NewServer(hs.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.ServeIngest(ln)
	t.Cleanup(func() {
		ln.Close()
		ts.Close()
		e.Close()
	})
	return ts, ln, e
}

// TestIngestStreamHTTP drives the binary path over POST /v1/ingest:
// location updates with results, object mutations with echoed ids, and
// per-entry error codes — then checks the ingest counters in /v1/stats.
func TestIngestStreamHTTP(t *testing.T) {
	ts, _, _ := newIngestServer(t, 0)
	c := insqclient.New(ts.URL, insqclient.Options{Retries: -1})
	sid, err := c.CreateSession(3, 1.6, false)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := c.DialIngest(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}

	// A location update with results: one OK entry with a kNN answer, one
	// unknown session surfacing as a per-entry code.
	ack, err := ing.Call(api.IngestBatch{
		WantResults: true,
		Updates: []api.UpdateEntry{
			{Session: sid, X: 100, Y: 100},
			{Session: 9999, X: 1, Y: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != api.CodeOK || ack.Applied != 1 {
		t.Fatalf("update ack: %+v", ack)
	}
	if len(ack.Results) != 2 {
		t.Fatalf("results: %+v", ack.Results)
	}
	if ack.Results[0].Code != api.CodeOK || len(ack.Results[0].KNN) != 3 {
		t.Fatalf("entry 0: %+v", ack.Results[0])
	}
	if ack.Results[1].Code != api.CodeUnknownSession {
		t.Fatalf("entry 1: %+v, want unknown_session", ack.Results[1])
	}

	// Mutations: insert echoes the assigned id, remove echoes the target.
	ack, err = ing.Call(api.IngestBatch{
		WantResults: true,
		Mutations:   []index.Mutation{{Insert: true, P: geom.Pt(500, 500)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != api.CodeOK || len(ack.MutationIDs) != 1 {
		t.Fatalf("insert ack: %+v", ack)
	}
	id := ack.MutationIDs[0]
	ack, err = ing.Call(api.IngestBatch{
		WantResults: true,
		Mutations:   []index.Mutation{{ID: id}},
	})
	if err != nil || ack.Code != api.CodeOK {
		t.Fatalf("remove ack: %+v, err %v", ack, err)
	}
	// A bad mutation fails its whole frame with the mapped code.
	ack, err = ing.Call(api.IngestBatch{
		Mutations: []index.Mutation{{ID: id}}, // already removed
	})
	if err != nil || ack.Code != api.CodeUnknownObject {
		t.Fatalf("double remove ack: %+v, err %v, want unknown_object", ack, err)
	}

	// Results are elided unless asked for.
	ack, err = ing.Call(api.IngestBatch{
		Updates: []api.UpdateEntry{{Session: sid, X: 101, Y: 101}},
	})
	if err != nil || ack.Code != api.CodeOK || len(ack.Results) != 0 {
		t.Fatalf("elided ack: %+v, err %v", ack, err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil {
		t.Fatal("stats missing ingest section after binary traffic")
	}
	if st.Ingest.FramesTotal < 5 || st.Ingest.Connections != 1 {
		t.Fatalf("ingest stats: %+v", st.Ingest)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestIngestStreamTCP covers the raw listener: same protocol, no HTTP.
func TestIngestStreamTCP(t *testing.T) {
	ts, ln, _ := newIngestServer(t, 0)
	c := insqclient.New(ts.URL, insqclient.Options{Retries: -1})
	sid, err := c.CreateSession(2, 1.6, false)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := insqclient.DialIngestTCP(context.Background(), ln.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := ing.Call(api.IngestBatch{
		WantResults: true,
		Updates:     []api.UpdateEntry{{Session: sid, X: 50, Y: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != api.CodeOK || len(ack.Results) != 1 || len(ack.Results[0].KNN) != 2 {
		t.Fatalf("tcp ack: %+v", ack)
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestIngestPipelinedCoalesce sends a pipelined burst through the raw
// listener under a wide coalesce window and checks that the server
// merged frames into fewer engine batches (the coalesce counters are the
// observable).
func TestIngestPipelinedCoalesce(t *testing.T) {
	ts, ln, _ := newIngestServer(t, 50*time.Millisecond)
	c := insqclient.New(ts.URL, insqclient.Options{Retries: -1})
	sid, err := c.CreateSession(3, 1.6, false)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 16
	ing, err := insqclient.DialIngestTCP(context.Background(), ln.Addr().String(), frames)
	if err != nil {
		t.Fatal(err)
	}
	// The first frame is deliberately heavy (many entries for one
	// session): while the pump applies it, the small frames behind it
	// queue up and the next drain must merge them — coalescing from
	// natural backpressure, no timing luck required.
	heavy := make([]api.UpdateEntry, 2048)
	for i := range heavy {
		heavy[i] = api.UpdateEntry{Session: sid, X: float64(i % 97), Y: float64(i % 89)}
	}
	if _, err := ing.Send(api.IngestBatch{Updates: heavy}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < frames; i++ {
		if _, err := ing.Send(api.IngestBatch{
			Updates: []api.UpdateEntry{{Session: sid, X: float64(i), Y: float64(i)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var seq uint64
	for i := 0; i < frames; i++ {
		ack, ok := <-ing.Acks()
		if !ok {
			t.Fatalf("ack stream ended early: %v", ing.Err())
		}
		want := 1
		if i == 0 {
			want = len(heavy)
		}
		if ack.Code != api.CodeOK || ack.Applied != want {
			t.Fatalf("ack %d: %+v", i, ack)
		}
		if ack.Seq <= seq {
			t.Fatalf("acks out of order: %d after %d", ack.Seq, seq)
		}
		seq = ack.Seq
	}
	if err := ing.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil || st.Ingest.FramesTotal != frames {
		t.Fatalf("ingest stats: %+v", st.Ingest)
	}
	if st.Ingest.CoalescedBatches == 0 || st.Ingest.Batches >= st.Ingest.FramesTotal {
		t.Fatalf("no coalescing observed: %+v", st.Ingest)
	}
	if st.Ingest.CoalesceFactor <= 1 {
		t.Fatalf("coalesce factor %v, want > 1", st.Ingest.CoalesceFactor)
	}
}

// TestIngestBadFrame: a corrupt frame is acked with bad_frame, then the
// server drops the connection (framing is unrecoverable).
func TestIngestBadFrame(t *testing.T) {
	_, ln, _ := newIngestServer(t, 0)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(api.ClientMagic)); err != nil {
		t.Fatal(err)
	}
	magic := make([]byte, len(api.ServerMagic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		t.Fatal(err)
	}
	if string(magic) != api.ServerMagic {
		t.Fatalf("server magic %q", magic)
	}
	// A frame whose CRC does not match its payload.
	bad := make([]byte, 12)
	binary.LittleEndian.PutUint32(bad[0:4], 4)          // length 4
	binary.LittleEndian.PutUint32(bad[4:8], 0xdeadbeef) // wrong crc
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	br := newFrameReader(conn)
	ack := readAck(t, br)
	if ack.Code != api.CodeBadFrame {
		t.Fatalf("ack code %s, want bad_frame", ack.Code)
	}
	if _, err := readFrame(br); err == nil {
		t.Fatal("connection survived a bad frame")
	}
}

// TestIngestNotReady: frames against a recovering server are acked
// unavailable (the TCP equivalent of the HTTP 503 gate), and the HTTP
// dial itself is refused with a transient coded error.
func TestIngestNotReady(t *testing.T) {
	hs := server.NewPending(server.Options{})
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go hs.ServeIngest(ln)

	c := insqclient.New(ts.URL, insqclient.Options{Retries: -1})
	if _, err := c.DialIngest(context.Background(), 1); err == nil {
		t.Fatal("HTTP dial succeeded against a recovering server")
	} else {
		var ae *insqclient.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || !ae.Transient() {
			t.Fatalf("dial error: %v", err)
		}
	}

	ing, err := insqclient.DialIngestTCP(context.Background(), ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	ack, err := ing.Call(api.IngestBatch{
		Updates: []api.UpdateEntry{{Session: 1, X: 0, Y: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Code != api.CodeUnavailable {
		t.Fatalf("ack code %s, want unavailable", ack.Code)
	}
}

// TestIngestDifferential is the protocol-equivalence acceptance test:
// the same operation sequence driven through the JSON endpoints of one
// server and the binary ingest stream of an identical second server must
// produce identical update results, identical assigned object ids,
// identical push-stream deltas and identical final engine state. Run
// with -race.
func TestIngestDifferential(t *testing.T) {
	jsonTS, _, _ := newIngestServer(t, time.Millisecond)
	binTS, _, _ := newIngestServer(t, time.Millisecond)
	jc := insqclient.New(jsonTS.URL, insqclient.Options{Retries: -1})
	bc := insqclient.New(binTS.URL, insqclient.Options{Retries: -1})

	// Identical session sets: three plane, one network, on each server.
	var jsids, bsids []uint64
	for i := 0; i < 3; i++ {
		js, err := jc.CreateSession(3, 1.6, false)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := bc.CreateSession(3, 1.6, false)
		if err != nil {
			t.Fatal(err)
		}
		jsids, bsids = append(jsids, js), append(bsids, bs)
	}
	jnet, err := jc.CreateSession(2, 1.6, true)
	if err != nil {
		t.Fatal(err)
	}
	bnet, err := bc.CreateSession(2, 1.6, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jsids, bsids) || jnet != bnet {
		t.Fatalf("session ids diverged: %v/%d vs %v/%d", jsids, jnet, bsids, bnet)
	}

	// Park session 1 at a fixed spot, then subscribe its push stream on
	// both servers. It never moves again: every event it receives from
	// here on is a "data" push caused by a mutation near its position.
	if _, err := jc.Update([]api.UpdateEntry{{Session: jsids[0], X: 100, Y: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := bc.Update([]api.UpdateEntry{{Session: bsids[0], X: 100, Y: 100}}); err != nil {
		t.Fatal(err)
	}
	jEvents := make(chan api.SessionEvent, 64)
	bEvents := make(chan api.SessionEvent, 64)
	jStop, err := jc.Subscribe([]uint64{jsids[0]}, func(ev api.SessionEvent) { jEvents <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer jStop()
	bStop, err := bc.Subscribe([]uint64{bsids[0]}, func(ev api.SessionEvent) { bEvents <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer bStop()
	expectEventPair(t, jEvents, bEvents, "snapshot")

	ing, err := bc.DialIngest(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	compareUpdate := func(t *testing.T, jr *api.UpdateResponse, ack api.IngestAck) {
		t.Helper()
		if ack.Code != api.CodeOK {
			t.Fatalf("binary ack not OK: %+v", ack)
		}
		if len(jr.Results) != len(ack.Results) {
			t.Fatalf("result count: json %d, binary %d", len(jr.Results), len(ack.Results))
		}
		for i, je := range jr.Results {
			be := ack.Results[i]
			jcode := je.Code
			if je.Error == "" {
				jcode = api.CodeOK
			}
			if je.Session != be.Session || jcode != be.Code || !reflect.DeepEqual(je.KNN, be.KNN) {
				t.Fatalf("entry %d diverged:\n json   %+v\n binary %+v", i, je, be)
			}
		}
	}

	var insertedIDs []int
	for step := 0; step < 15; step++ {
		// Plane updates: the non-subscribed sessions move in lockstep on
		// both paths (the subscriber stays parked).
		entries := make([]api.UpdateEntry, 0, len(jsids)-1)
		for i, sid := range jsids[1:] {
			entries = append(entries, api.UpdateEntry{
				Session: sid,
				X:       100 + float64(step*40+i*13),
				Y:       100 + float64(step*25+i*7),
			})
		}
		jr, err := jc.Update(entries)
		if err != nil {
			t.Fatal(err)
		}
		ack, err := ing.Call(api.IngestBatch{Updates: entries, WantResults: true})
		if err != nil {
			t.Fatal(err)
		}
		compareUpdate(t, jr, ack)

		// Network update: park the network session at a vertex position.
		v := (step * 3) % 60
		nentries := []api.NetworkUpdateEntry{{Session: jnet, U: v, V: v}}
		jnr, err := jc.NetworkUpdate(nentries)
		if err != nil {
			t.Fatal(err)
		}
		nack, err := ing.Call(api.IngestBatch{NetworkUpdates: nentries, WantResults: true})
		if err != nil {
			t.Fatal(err)
		}
		compareUpdate(t, jnr, nack)

		switch step % 5 {
		case 2:
			// Insert right next to the parked subscriber so the push fires.
			x := 100.1 + float64(step)/100
			jid, err := jc.AddObject(x, x)
			if err != nil {
				t.Fatal(err)
			}
			mack, err := ing.Call(api.IngestBatch{
				WantResults: true,
				Mutations:   []index.Mutation{{Insert: true, P: geom.Pt(x, x)}},
			})
			if err != nil || mack.Code != api.CodeOK {
				t.Fatalf("binary insert: %+v, err %v", mack, err)
			}
			if len(mack.MutationIDs) != 1 || mack.MutationIDs[0] != jid {
				t.Fatalf("assigned ids diverged: json %d, binary %v", jid, mack.MutationIDs)
			}
			insertedIDs = append(insertedIDs, jid)
			expectEventPair(t, jEvents, bEvents, "data")
		case 4:
			if len(insertedIDs) == 0 {
				break
			}
			id := insertedIDs[0]
			insertedIDs = insertedIDs[1:]
			if err := jc.RemoveObject(id); err != nil {
				t.Fatal(err)
			}
			mack, err := ing.Call(api.IngestBatch{
				Mutations: []index.Mutation{{ID: id}},
			})
			if err != nil || mack.Code != api.CodeOK {
				t.Fatalf("binary remove: %+v, err %v", mack, err)
			}
			expectEventPair(t, jEvents, bEvents, "data")
		}
	}

	// Final state: object counts and a last full-result probe must agree.
	jst, err := jc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	bst, err := bc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if jst.Objects != bst.Objects || jst.NetworkObjects != bst.NetworkObjects || jst.Sessions != bst.Sessions {
		t.Fatalf("final state diverged: json %d/%d/%d, binary %d/%d/%d",
			jst.Objects, jst.NetworkObjects, jst.Sessions,
			bst.Objects, bst.NetworkObjects, bst.Sessions)
	}
	if bst.Ingest == nil || bst.Ingest.FramesTotal == 0 {
		t.Fatalf("binary server ingest stats: %+v", bst.Ingest)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// expectEventPair waits for one push event on each server and asserts
// the two are identical (cause, result set, delta).
func expectEventPair(t *testing.T, j, b <-chan api.SessionEvent, cause string) {
	t.Helper()
	wait := func(name string, ch <-chan api.SessionEvent) api.SessionEvent {
		select {
		case ev := <-ch:
			return ev
		case <-time.After(5 * time.Second):
			t.Fatalf("no %q event from the %s server within 5s", cause, name)
			return api.SessionEvent{}
		}
	}
	je := wait("json", j)
	be := wait("binary", b)
	if je.Cause != cause || be.Cause != cause {
		t.Fatalf("causes: json %q, binary %q, want %q", je.Cause, be.Cause, cause)
	}
	if !reflect.DeepEqual(je.KNN, be.KNN) || !reflect.DeepEqual(je.Added, be.Added) || !reflect.DeepEqual(je.Removed, be.Removed) {
		t.Fatalf("push deltas diverged:\n json   %+v\n binary %+v", je, be)
	}
}

// Minimal frame reading for the raw-protocol tests.
func newFrameReader(conn net.Conn) *frameReader { return &frameReader{conn: conn} }

type frameReader struct {
	conn net.Conn
	buf  []byte
}

func readFrame(fr *frameReader) ([]byte, error) {
	hdr := make([]byte, 8)
	fr.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(fr.conn, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > api.MaxFramePayload {
		return nil, fmt.Errorf("bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(fr.conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func readAck(t *testing.T, fr *frameReader) api.IngestAck {
	t.Helper()
	payload, err := readFrame(fr)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := api.DecodeAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	return ack
}
