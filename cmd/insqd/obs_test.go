package main

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	insq "repro"
	"repro/internal/api"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
)

// syncBuffer makes the slow-op/access log buffer safe to read while
// background goroutines (shard workers, WAL sync) may still be logging.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newObsServer boots an instrumented in-memory engine behind the full
// HTTP stack: registry + runtime metrics + slow-op log with the given
// thresholds, exactly as main wires them. Extra option functions tweak
// the server configuration before construction.
func newObsServer(t *testing.T, th obs.Thresholds, logw io.Writer, optFns ...func(*server.Options)) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(reg)
	pipe := obs.NewPipeline(reg, obs.NewSlowLog(slog.New(slog.NewTextHandler(logw, nil)), th))
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  2,
		Bounds:  bounds,
		Objects: insq.UniformPoints(300, bounds, 1),
		Obs:     pipe,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := server.Options{Obs: pipe}
	for _, fn := range optFns {
		fn(&opts)
	}
	ts := httptest.NewServer(server.New(e, opts).Handler())
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts
}

// TestMetricsEndpoint scrapes /metrics on a live instrumented server and
// checks the exposition: stage histograms fed by real traffic, engine
// gauges, build info and runtime metrics, all in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	ts := newObsServer(t, obs.Thresholds{}, io.Discard)

	var created api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3}, &created); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	var upd api.UpdateResponse
	if code := postJSON(t, ts.URL+"/v1/update", api.UpdateRequest{
		Updates: []api.UpdateEntry{{Session: created.Session, X: 10, Y: 10}},
	}, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 5, Y: 5}, &obj); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if r.Header.Get("X-Trace-Id") == "" {
		t.Error("instrumented response missing X-Trace-Id")
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE insq_stage_duration_seconds histogram",
		`insq_stage_duration_seconds_bucket{stage="decode",le="+Inf"}`,
		`insq_stage_duration_seconds_bucket{stage="apply",le="+Inf"}`,
		`insq_shard_queue_depth{shard="0"}`,
		"insq_sessions 1",
		"insq_objects 301",
		"# TYPE insq_build_info gauge",
		"insq_go_goroutines",
		"insq_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsDisabled pins the opt-out: without a pipeline the route is
// absent and responses carry no trace header.
func TestMetricsDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics without obs: status %d, want 404", r.StatusCode)
	}
	if r.Header.Get("X-Trace-Id") != "" {
		t.Error("uninstrumented response has X-Trace-Id")
	}
}

// TestAccessLogTraces checks the opt-in access log: one structured line
// per request whose trace field matches the X-Trace-Id response header.
func TestAccessLogTraces(t *testing.T) {
	var logBuf syncBuffer
	ts := newObsServer(t, obs.Thresholds{}, io.Discard, func(o *server.Options) {
		o.AccessLog = slog.New(slog.NewTextHandler(&logBuf, nil))
	})

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	trace := r.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("missing X-Trace-Id")
	}
	out := logBuf.String()
	for _, want := range []string{"msg=access", "method=GET", "path=/healthz", "status=200", "trace=" + trace} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %q:\n%s", want, out)
		}
	}
}

// TestStatsTTLCache checks the /v1/stats TTL cache: within the TTL the
// second scrape is served verbatim from the cache (byte-identical JSON,
// including uptime), so pollers don't fan messages to the shard workers.
func TestStatsTTLCache(t *testing.T) {
	ts := newObsServer(t, obs.Thresholds{}, io.Discard, func(o *server.Options) {
		o.StatsTTL = time.Hour
	})

	get := func() string {
		t.Helper()
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("stats: status %d", r.StatusCode)
		}
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := get()
	if !strings.Contains(first, `"uptime_seconds"`) {
		t.Errorf("stats missing uptime_seconds: %s", first)
	}
	if !strings.Contains(first, `"go_version"`) {
		t.Errorf("stats missing build info: %s", first)
	}
	// Mutate state, then re-scrape inside the TTL: the cached snapshot
	// (identical bytes, stale object count and uptime) must come back.
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 1, Y: 1}, &obj); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if second := get(); second != first {
		t.Errorf("stats not served from cache inside TTL:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// TestSlowOpTraces is the end-to-end slow-op acceptance check: a durable
// engine (fsync=always) with nanosecond thresholds must log structured
// slow-fsync and slow-publish entries carrying the request's trace ID —
// the same ID the client sees in X-Trace-Id. Run with -race.
func TestSlowOpTraces(t *testing.T) {
	var logBuf syncBuffer
	reg := obs.NewRegistry()
	pipe := obs.NewPipeline(reg, obs.NewSlowLog(
		slog.New(slog.NewTextHandler(&logBuf, nil)),
		obs.Thresholds{Fsync: time.Nanosecond, Publish: time.Nanosecond}))

	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	objects := insq.UniformPoints(100, bounds, 1)
	mgr, err := wal.Open(index.Config{
		Bounds:  bounds,
		Objects: objects,
		Obs:     pipe,
	}, wal.Options{Dir: t.TempDir(), Sync: wal.SyncAlways, Obs: pipe})
	if err != nil {
		t.Fatal(err)
	}
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  2,
		Bounds:  bounds,
		Objects: objects,
		Obs:     pipe,
		WAL:     mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(e, server.Options{Obs: pipe}).Handler())
	defer func() {
		ts.Close()
		if err := mgr.Close(); err != nil {
			t.Error(err)
		}
		e.Close()
	}()

	body := strings.NewReader(`{"x":10,"y":20}`)
	r, err := http.Post(ts.URL+"/v1/objects", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("insert: status %d", r.StatusCode)
	}
	trace := r.Header.Get("X-Trace-Id")
	if trace == "" {
		t.Fatal("missing X-Trace-Id")
	}

	out := logBuf.String()
	for _, want := range []string{
		"msg=slow_op",
		"op=fsync trace=" + trace,
		"op=publish trace=" + trace,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-op log missing %q:\n%s", want, out)
		}
	}
	if pipe.StageCount(obs.StageFsync) == 0 || pipe.StageCount(obs.StageWALAppend) == 0 {
		t.Error("WAL stages not observed")
	}
}
