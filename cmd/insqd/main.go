// Command insqd serves MkNN queries over HTTP: an online INS serving
// engine (internal/engine) behind a JSON API. It boots a uniform synthetic
// dataset, then maintains live query sessions against it — create a
// session, stream batched location updates, mutate the object set, read
// aggregated serving stats:
//
//	insqd -addr :8080 -objects 100000 -shards 8
//
//	curl -X POST localhost:8080/v1/sessions -d '{"k":5,"rho":1.6}'
//	curl -X POST localhost:8080/v1/update -d '{"updates":[{"session":1,"x":512,"y":316}]}'
//	curl -X POST localhost:8080/v1/objects -d '{"x":100,"y":200}'
//	curl -X DELETE localhost:8080/v1/objects/42
//	curl localhost:8080/v1/stats
//	curl -N localhost:8080/v1/sessions/1/events     # SSE push stream
//	curl -N 'localhost:8080/v1/events?sessions=1,2' # multi-session variant
//
// The /events endpoints stream continuous-query results: after an object
// insert/delete invalidates a subscribed session, the engine recomputes
// it eagerly and pushes the kNN delta — the client never polls.
//
// With -network-grid G the server additionally builds a G×G synthetic
// street grid and serves road-network sessions against it, with online
// site mutations — full parity with the plane side:
//
//	insqd -network-grid 64 -network-sites 500
//
//	curl -X POST localhost:8080/v1/sessions -d '{"k":5,"network":true}'
//	curl -X POST localhost:8080/v1/network/update -d '{"updates":[{"session":1,"u":17,"v":18,"t":0.5}]}'
//	curl -X POST localhost:8080/v1/network/objects -d '{"vertex":17}'
//	curl -X DELETE localhost:8080/v1/network/objects/17
//
// High-rate feeds should use the binary streaming ingest path instead of
// JSON requests: POST /v1/ingest upgrades the connection to a
// length-prefixed CRC32C frame stream (see internal/api), and
// -ingest-addr additionally opens a raw TCP listener speaking the same
// protocol without the HTTP layer. Frames arriving within
// -coalesce-window merge into single engine batches. internal/client
// provides the Go client for both paths.
//
// See internal/api for the wire types and cmd/loadgen for a closed-loop
// driver (-subscribe measures insert-to-push latency, -ingest drives the
// binary path). SIGINT/SIGTERM shut the server down gracefully: the
// stream broker closes first so every SSE subscriber receives a final
// "bye" event, in-flight requests drain, then the engine stops and
// prints its final stats.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	insq "repro"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insqd: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		objects     = flag.Int("objects", 100000, "synthetic plane data objects")
		space       = flag.Float64("space", 10000, "side length of the square data space")
		shards      = flag.Int("shards", 8, "engine shards (parallel session workers)")
		fanout      = flag.Int("fanout", insq.DefaultFanout, "VoR-tree fanout")
		seed        = flag.Int64("seed", 42, "dataset seed")
		netGrid     = flag.Int("network-grid", 0, "serve a road-network side too: a GxG street grid (0 = plane only; loadgen -network must use the same value)")
		netSites    = flag.Int("network-sites", 1000, "initial network data objects (with -network-grid)")
		pprofOn     = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (see EXPERIMENTS.md for the profiling recipe)")
		dataDir     = flag.String("data-dir", "", "durability directory: write-ahead log + checkpoints; on boot the newest checkpoint is loaded and the WAL tail replayed (empty = no durability, state dies with the process)")
		fsync       = flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always (group commit, no acknowledged batch lost), interval (bounded loss window), off")
		ckptEach    = flag.Uint64("checkpoint-every", wal.DefaultCheckpointEvery, "checkpoint the index snapshot every N data-update epochs (with -data-dir)")
		metricsOn   = flag.Bool("metrics", true, "pipeline observability: Prometheus /metrics, per-stage latency histograms, per-request trace IDs, slow-op log")
		accessLogOn = flag.Bool("access-log", false, "structured access log on stderr: method, path, status, duration, trace ID")
		slowBatch   = flag.Duration("slow-batch", 50*time.Millisecond, "slow-op log threshold for one shard batch (0 = off)")
		slowFsync   = flag.Duration("slow-fsync", 20*time.Millisecond, "slow-op log threshold for one WAL fsync (0 = off)")
		slowPublish = flag.Duration("slow-publish", 20*time.Millisecond, "slow-op log threshold for one epoch publication (0 = off)")
		statsTTL    = flag.Duration("stats-ttl", 500*time.Millisecond, "cache the merged /v1/stats snapshot this long so scrapers don't perturb shard workers (0 = no cache)")
		reqTimeout  = flag.Duration("request-timeout", 5*time.Second, "per-request deadline for update/object mutations; expired batches are dropped at the shard (0 = no deadline)")
		faultSpec   = flag.String("fault", "", "chaos testing: arm failpoints, e.g. 'wal.fsync.err=err,count:10;store.publish.delay=delay:5ms' (also via INSQ_FAULT; empty = all disarmed)")
		ingestAddr  = flag.String("ingest-addr", "", "additionally serve the binary ingest protocol on this raw TCP address, bypassing HTTP (empty = HTTP /v1/ingest only)")
		coalesce    = flag.Duration("coalesce-window", time.Millisecond, "merge ingest frames arriving within this window into one engine batch (0 = apply frames individually)")
	)
	flag.Parse()
	if *objects < 1 || *shards < 1 || *space <= 0 {
		log.Fatal("objects and shards must be >= 1 and space > 0")
	}
	if *faultSpec == "" {
		*faultSpec = os.Getenv("INSQ_FAULT")
	}
	if *faultSpec != "" {
		armed, err := fault.ParseAndArm(*faultSpec)
		if err != nil {
			log.Fatalf("-fault: %v (known points: %v)", err, fault.Names())
		}
		log.Printf("FAULT INJECTION ARMED (testing only): %v", armed)
	}

	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(*space, *space))
	cfg := insq.EngineConfig{
		Shards:  *shards,
		Fanout:  *fanout,
		Bounds:  bounds,
		Objects: insq.UniformPoints(*objects, bounds, *seed),
	}
	if *netGrid > 0 {
		g, err := workload.Network(*netGrid, bounds, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sites, err := workload.NetworkSites(g, *netSites, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Network, cfg.NetworkSites = g, sites
		log.Printf("road network: %d vertices, %d edges, %d sites", g.NumVertices(), g.NumEdges(), len(sites))
	}

	// Start listening before recovery: during WAL replay clients get a
	// clean 503 + Retry-After instead of a connection refused, and load
	// balancers can watch /healthz flip.
	if *pprofOn {
		log.Print("pprof endpoints enabled under /debug/pprof/")
	}
	// Observability wiring: one registry and slow-op log shared by every
	// layer (server decode, engine shards, store publishes, WAL appends,
	// stream pushes). -metrics=false compiles the whole pipeline to a
	// noop: pipe stays nil and every instrumentation site is one branch.
	var pipe *obs.Pipeline
	slogger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *metricsOn {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		slow := obs.NewSlowLog(slogger, obs.Thresholds{
			Batch:   *slowBatch,
			Fsync:   *slowFsync,
			Publish: *slowPublish,
		})
		pipe = obs.NewPipeline(reg, slow)
		version, goVersion, revision := obs.Build()
		log.Printf("observability: /metrics on, build %s %s %s", version, goVersion, revision)
	}
	opts := server.Options{
		Pprof:          *pprofOn,
		Obs:            pipe,
		RequestTimeout: *reqTimeout,
		StatsTTL:       *statsTTL,
		CoalesceWindow: *coalesce,
	}
	if *accessLogOn {
		opts.AccessLog = slogger
	}
	hs := server.NewPending(opts)
	cfg.Obs = pipe
	srv := &http.Server{
		Addr:    *addr,
		Handler: hs.Handler(),
		// Bound slow clients so stuck connections can't pin goroutines (or
		// eat the whole shutdown budget); bodies are size-capped per
		// handler.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	var ingestLn net.Listener
	if *ingestAddr != "" {
		var err error
		ingestLn, err = net.Listen("tcp", *ingestAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("binary ingest on %s (coalesce window %v)", *ingestAddr, *coalesce)
		go func() {
			if err := hs.ServeIngest(ingestLn); !errors.Is(err, net.ErrClosed) {
				log.Fatal(err)
			}
		}()
	}

	var mgr *wal.Manager
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durability: opening %s (fsync=%s, checkpoint-every=%d)...", *dataDir, policy, *ckptEach)
		mgr, err = wal.Open(index.Config{
			Fanout:       *fanout,
			Bounds:       bounds,
			Objects:      cfg.Objects,
			Network:      cfg.Network,
			NetworkSites: cfg.NetworkSites,
			Obs:          pipe,
		}, wal.Options{
			Dir:             *dataDir,
			Sync:            policy,
			CheckpointEvery: *ckptEach,
			Obs:             pipe,
			Logger:          slogger,
		})
		if err != nil {
			log.Fatal(err)
		}
		ws := mgr.Stats()
		log.Printf("recovered to epoch %d in %v (checkpoint epoch %d, %d batches replayed, %d bytes truncated)",
			ws.RecoveredEpoch, ws.Recovery.Round(time.Millisecond), ws.CheckpointEpoch, ws.ReplayedBatches, ws.TruncatedBytes)
		cfg.WAL = mgr
	}
	log.Printf("building shared index of %d objects (%d shards)...", *objects, *shards)
	start := time.Now()
	e, err := insq.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hs.SetEngine(e)
	log.Printf("engine up in %v", time.Since(start).Round(time.Millisecond))

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()
	<-ctx.Done()
	log.Print("shutting down...")
	// Close the push broker first: every SSE subscriber gets a final "bye"
	// event and its handler returns, so Shutdown's drain below isn't held
	// hostage by long-lived /events connections (they would otherwise
	// outlive any drain timeout by design).
	e.Stream().Close()
	if ingestLn != nil {
		ingestLn.Close()
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutdownCancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if st, err := e.Stats(); err == nil {
		log.Printf("final: %v", st)
	}
	if mgr != nil {
		// Final checkpoint needs a live store: close the manager before the
		// engine.
		if err := mgr.Close(); err != nil {
			log.Printf("wal close: %v", err)
		}
	}
	e.Close()
	log.Print("bye")
}
