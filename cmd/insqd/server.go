package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	insq "repro"
	"repro/internal/api"
	"repro/internal/engine"
)

// server routes the insqd HTTP API onto one serving engine. The engine is
// safe for concurrent use, so handlers need no additional locking.
type server struct {
	e *insq.Engine
}

// handler builds the route table; factored out of main so tests can mount
// it on httptest servers.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.closeSession)
	mux.HandleFunc("POST /v1/update", s.updateBatch)
	mux.HandleFunc("POST /v1/objects", s.insertObject)
	mux.HandleFunc("DELETE /v1/objects/{id}", s.removeObject)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps engine errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, engine.ErrUnknownSession), errors.Is(err, engine.ErrUnknownObject):
		status = http.StatusNotFound
	case errors.Is(err, engine.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, api.ErrorResponse{Error: err.Error()})
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: msg})
}

// maxRequestBody bounds request bodies (comfortably above a 100k-entry
// update batch) so one oversized POST cannot exhaust server memory.
const maxRequestBody = 8 << 20

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorResponse{Error: err.Error()})
			return false
		}
		writeBadRequest(w, "bad request body: "+err.Error())
		return false
	}
	return true
}

func pathID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeBadRequest(w, "bad id: "+err.Error())
		return 0, false
	}
	return id, true
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Rho == 0 {
		req.Rho = 1.6
	}
	sid, err := s.e.CreateSession(req.K, req.Rho)
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, err)
		return
	}
	if err != nil { // parameter validation
		writeBadRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, api.CreateSessionResponse{Session: uint64(sid)})
}

func (s *server) closeSession(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.CloseSession(insq.SessionID(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) updateBatch(w http.ResponseWriter, r *http.Request) {
	var req api.UpdateRequest
	if !decode(w, r, &req) {
		return
	}
	results, err := s.e.UpdateBatch(api.NewLocationUpdates(req.Updates))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewUpdateResponse(results))
}

func (s *server) insertObject(w http.ResponseWriter, r *http.Request) {
	var req api.ObjectRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := s.e.InsertObject(insq.Pt(req.X, req.Y))
	switch {
	case errors.Is(err, engine.ErrOutOfBounds):
		writeBadRequest(w, err.Error())
		return
	case err != nil: // ErrClosed -> 503, internal failures -> 500
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ObjectResponse{ID: id})
}

func (s *server) removeObject(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.RemoveObject(int(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	st, err := s.e.Stats()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewStatsResponse(st))
}
