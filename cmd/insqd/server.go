package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	insq "repro"
	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/stream"
)

// server routes the insqd HTTP API onto one serving engine. The engine is
// safe for concurrent use, so handlers need no additional locking.
type server struct {
	// e is nil until setEngine; handlers only run after ready flips, whose
	// atomic store/load orders the engine write before any handler read.
	e     *insq.Engine
	ready atomic.Bool
	// pprof opt-in: mounts net/http/pprof under /debug/pprof/ (CPU, heap,
	// mutex, block profiles of the live serving process). Off by default —
	// profiles expose internals and cost cycles while sampling.
	pprof bool

	// obs enables /metrics, per-request trace IDs and decode-stage timing;
	// nil turns all of it off. accessLog, when non-nil, logs one line per
	// request (method, path, status, duration, trace).
	obs       *obs.Pipeline
	accessLog *slog.Logger

	// reqTimeout bounds each update/object mutation request: the handler
	// derives a deadline from it so batches abandoned by their client are
	// dropped at the shard instead of executed into the void. 0 disables.
	reqTimeout time.Duration

	// statsTTL caches the merged /v1/stats snapshot: Engine.Stats fans a
	// message to every shard worker, so a scraper polling at 1s must not
	// perturb them per request. 0 disables caching.
	statsTTL   time.Duration
	statsMu    sync.Mutex
	statsAt    time.Time
	statsCache api.StatsResponse
}

// newServer returns a server already open for traffic — the in-process
// boot path (and tests), where the engine exists before the listener.
func newServer(e *insq.Engine, pprofOn bool) *server {
	s := &server{pprof: pprofOn}
	s.setEngine(e)
	return s
}

// setEngine publishes the engine and opens the server for traffic. The
// listener starts before crash recovery finishes, so clients get a clean
// 503 + Retry-After instead of a connection refused while the WAL
// replays.
func (s *server) setEngine(e *insq.Engine) {
	s.e = e
	s.ready.Store(true)
}

// handler builds the route table behind the readiness gate; factored out
// of main so tests can mount it on httptest servers. /healthz answers
// before the gate: it is pure liveness (the process is up and serving
// HTTP), while /readyz and everything else reflect readiness.
func (s *server) handler() http.Handler {
	mux := s.routes()
	return s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok\n"))
			return
		}
		if !s.ready.Load() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{Error: "recovering: server not ready"})
			return
		}
		mux.ServeHTTP(w, r)
	}))
}

// statusWriter captures the response status for the access log while
// staying transparent to SSE: it forwards Flush and unwraps for
// http.NewResponseController's deadline control.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// instrument wraps the route table with per-request observability: a
// trace ID (minted here, returned in X-Trace-Id, threaded through the
// request context into the engine/store/WAL for slow-op attribution) and
// the opt-in access log. With neither observability nor access logging
// configured it returns next untouched — zero per-request cost.
func (s *server) instrument(next http.Handler) http.Handler {
	if s.obs == nil && s.accessLog == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		trace := obs.NewTraceID()
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(obs.WithTraceID(r.Context(), trace))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		if s.accessLog != nil {
			s.accessLog.Info("access",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.code,
				"dur_ms", float64(time.Since(start).Nanoseconds())/1e6,
				"trace", trace)
		}
	})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.closeSession)
	mux.HandleFunc("GET /v1/sessions/{id}/events", s.sessionEvents)
	mux.HandleFunc("GET /v1/events", s.events)
	mux.HandleFunc("POST /v1/update", s.updateBatch)
	mux.HandleFunc("POST /v1/network/update", s.updateNetworkBatch)
	mux.HandleFunc("POST /v1/objects", s.insertObject)
	mux.HandleFunc("DELETE /v1/objects/{id}", s.removeObject)
	mux.HandleFunc("POST /v1/network/objects", s.insertNetworkObject)
	mux.HandleFunc("DELETE /v1/network/objects/{id}", s.removeNetworkObject)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Normally answered before the ready gate in handler(); kept here
		// for completeness (tests that mount routes() directly).
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.readyz)
	if s.obs != nil {
		mux.HandleFunc("GET /metrics", s.metrics)
	}
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps engine errors onto HTTP statuses. Degraded mode (the
// durability layer is down, reads still serve) and admission-control shed
// both carry Retry-After: the condition is expected to clear — degraded
// via the WAL's heal probe, shed as the queue drains.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, engine.ErrUnknownSession), errors.Is(err, engine.ErrUnknownObject):
		status = http.StatusNotFound
	case errors.Is(err, engine.ErrSiteExists), errors.Is(err, engine.ErrLastSite):
		status = http.StatusConflict
	case errors.Is(err, engine.ErrNoNetwork), errors.Is(err, engine.ErrNoPlaneIndex),
		errors.Is(err, engine.ErrOutOfBounds):
		status = http.StatusBadRequest
	case errors.Is(err, engine.ErrDegraded):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, engine.ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, engine.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, api.ErrorResponse{Error: err.Error()})
}

// readyz is the readiness probe: 503 while recovering is handled by the
// gate in handler() before this runs, so here readiness means "not
// degraded" — a degraded server keeps serving reads but load balancers
// should prefer healthy replicas for write traffic.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.e.Degraded() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, api.ErrorResponse{Error: "degraded: durability unavailable, writes rejected"})
		return
	}
	w.Write([]byte("ready\n"))
}

// reqCtx derives the handler context for one mutation request, applying
// the server's request timeout when configured.
func (s *server) reqCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.reqTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.reqTimeout)
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	writeJSON(w, http.StatusBadRequest, api.ErrorResponse{Error: msg})
}

// maxRequestBody bounds request bodies (comfortably above a 100k-entry
// update batch) so one oversized POST cannot exhaust server memory.
const maxRequestBody = 8 << 20

func (s *server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	var start time.Time
	if s.obs.Enabled() {
		start = time.Now()
		defer func() { s.obs.Observe(obs.StageDecode, time.Since(start)) }()
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorResponse{Error: err.Error()})
			return false
		}
		writeBadRequest(w, "bad request body: "+err.Error())
		return false
	}
	return true
}

func pathID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeBadRequest(w, "bad id: "+err.Error())
		return 0, false
	}
	return id, true
}

func (s *server) createSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Rho == 0 {
		req.Rho = 1.6
	}
	var sid insq.SessionID
	var err error
	if req.Network {
		sid, err = s.e.CreateNetworkSession(req.K, req.Rho)
	} else {
		sid, err = s.e.CreateSession(req.K, req.Rho)
	}
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, err)
		return
	}
	if err != nil { // parameter validation (incl. no-network-configured)
		writeBadRequest(w, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, api.CreateSessionResponse{Session: uint64(sid)})
}

func (s *server) closeSession(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.CloseSession(insq.SessionID(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) updateBatch(w http.ResponseWriter, r *http.Request) {
	var req api.UpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	results, err := s.e.UpdateBatchCtx(ctx, api.NewLocationUpdates(req.Updates))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewUpdateResponse(results))
}

func (s *server) updateNetworkBatch(w http.ResponseWriter, r *http.Request) {
	var req api.NetworkUpdateRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx, cancel := s.reqCtx(r)
	defer cancel()
	results, err := s.e.UpdateNetworkBatchCtx(ctx, api.NewNetworkLocationUpdates(req.Updates))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.NewUpdateResponse(results))
}

func (s *server) insertNetworkObject(w http.ResponseWriter, r *http.Request) {
	var req api.NetworkObjectRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := s.e.InsertNetworkObjectCtx(r.Context(), req.Vertex)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ObjectResponse{ID: id})
}

func (s *server) removeNetworkObject(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.RemoveNetworkObjectCtx(r.Context(), int(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) insertObject(w http.ResponseWriter, r *http.Request) {
	var req api.ObjectRequest
	if !s.decode(w, r, &req) {
		return
	}
	id, err := s.e.InsertObjectCtx(r.Context(), insq.Pt(req.X, req.Y))
	switch {
	case errors.Is(err, engine.ErrOutOfBounds):
		writeBadRequest(w, err.Error())
		return
	case err != nil: // ErrClosed -> 503, internal failures -> 500
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ObjectResponse{ID: id})
}

func (s *server) removeObject(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	if err := s.e.RemoveObjectCtx(r.Context(), int(id)); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// metrics serves the Prometheus exposition of the pipeline's registry.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.Registry().WritePrometheus(w)
}

// statsResponse builds the wire stats, stamping the serving build.
func statsResponse(st insq.EngineStats) api.StatsResponse {
	resp := api.NewStatsResponse(st)
	resp.Version, resp.GoVersion, resp.Revision = obs.Build()
	return resp
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	if s.statsTTL <= 0 {
		st, err := s.e.Stats()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, statsResponse(st))
		return
	}
	// TTL cache with single flight: Engine.Stats fans a mailbox message to
	// every shard worker, so concurrent scrapers share one refresh and a
	// 1s poller costs the shards one stats message per TTL, not per
	// request.
	s.statsMu.Lock()
	if time.Since(s.statsAt) <= s.statsTTL {
		resp := s.statsCache
		s.statsMu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	st, err := s.e.Stats()
	if err != nil {
		s.statsMu.Unlock()
		writeError(w, err)
		return
	}
	s.statsCache = statsResponse(st)
	s.statsAt = time.Now()
	resp := s.statsCache
	s.statsMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ssePingInterval keeps idle /events connections alive through proxies
// and lets the handler notice dead peers.
const ssePingInterval = 15 * time.Second

// sessionEvents streams one session's result deltas: GET
// /v1/sessions/{id}/events. The stream opens with a snapshot event (the
// current kNN), then pushes deltas until the client disconnects, the
// session closes (a final close event) or the server shuts down (a final
// bye event).
func (s *server) sessionEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	s.serveEvents(w, r, []uint64{id}, true)
}

// events is the multi-session stream: GET /v1/events?sessions=1,2,3, or
// every session when the parameter is omitted. Snapshots open the stream
// for explicitly named sessions; a firehose subscription starts empty and
// carries deltas only.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	var ids []uint64
	if raw := r.URL.Query().Get("sessions"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				writeBadRequest(w, "bad sessions parameter: "+err.Error())
				return
			}
			ids = append(ids, id)
		}
	}
	s.serveEvents(w, r, ids, false)
}

// serveEvents is the shared SSE loop. Subscribing before reading the
// baseline snapshots means no delta can fall between them; the client
// dedups the overlap by Seq. The subscriber's queue is bounded with
// coalescing/drop-oldest (see internal/stream), so a stalled connection
// never backpressures the engine.
func (s *server) serveEvents(w http.ResponseWriter, r *http.Request, ids []uint64, single bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, api.ErrorResponse{Error: "streaming unsupported by this connection"})
		return
	}
	sub := s.e.Stream().Subscribe(0, ids...)
	if sub == nil { // broker already closed: shutdown in progress
		writeError(w, engine.ErrClosed)
		return
	}
	defer sub.Close()

	// Baseline snapshots, gathered before any status is written so an
	// unknown single session can still fail with a clean 404.
	snapshots := make([]api.SessionEvent, 0, len(ids))
	for _, id := range ids {
		st, err := s.e.State(insq.SessionID(id))
		if err != nil {
			if single {
				writeError(w, err)
				return
			}
			continue // multi-stream: skip unknown ids, serve the rest
		}
		snapshots = append(snapshots, api.SessionEvent{
			Session: id,
			Seq:     st.Seq,
			Epoch:   st.Epoch,
			Cause:   string(stream.CauseSnapshot),
			KNN:     st.KNN,
		})
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// The server's WriteTimeout is sized for request/response traffic;
	// this connection is long-lived, so push the deadline out before every
	// write instead.
	rc := http.NewResponseController(w)
	emit := func(ev api.SessionEvent) bool {
		rc.SetWriteDeadline(time.Now().Add(2 * ssePingInterval))
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Cause, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, snap := range snapshots {
		if !emit(snap) {
			return
		}
	}

	ping := time.NewTicker(ssePingInterval)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			// Graceful shutdown: a final farewell instead of a reset.
			emit(api.SessionEvent{Cause: string(stream.CauseBye)})
			return
		case <-ping.C:
			rc.SetWriteDeadline(time.Now().Add(2 * ssePingInterval))
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-sub.Wake():
			for ev, ok := sub.Next(); ok; ev, ok = sub.Next() {
				if !emit(api.NewSessionEvent(ev)) {
					return
				}
				if single && ev.Cause == stream.CauseClose {
					return // the one watched session is gone
				}
			}
		}
	}
}
