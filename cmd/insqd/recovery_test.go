package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	insq "repro"
	"repro/internal/api"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

// recoveryConfig is the shared seed state of the durable server and the
// in-process reference it must stay equivalent to.
func recoveryConfig(t *testing.T) insq.EngineConfig {
	t.Helper()
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	g, err := workload.Network(4, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	return insq.EngineConfig{
		Shards:       2,
		Bounds:       bounds,
		Objects:      insq.UniformPoints(300, bounds, 1),
		Network:      g,
		NetworkSites: sites,
	}
}

// startDurable boots an engine on the data dir (fsync=always so an
// abandoned manager models SIGKILL) and mounts the HTTP stack on it.
func startDurable(t *testing.T, cfg insq.EngineConfig, dir string) (*httptest.Server, *insq.Engine, *wal.Manager) {
	t.Helper()
	mgr, err := wal.Open(index.Config{
		Fanout:       cfg.Fanout,
		Bounds:       cfg.Bounds,
		Objects:      cfg.Objects,
		Network:      cfg.Network,
		NetworkSites: cfg.NetworkSites,
	}, wal.Options{Dir: dir, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = mgr
	e, err := insq.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(newServer(e, false).Handler()), e, mgr
}

// driveMutations sends the same object churn to both servers over HTTP
// and asserts the durable side assigns the same ids as the reference.
func driveMutations(t *testing.T, durable, ref string) {
	t.Helper()
	for i := 0; i < 8; i++ {
		var dresp, rresp api.ObjectResponse
		obj := api.ObjectRequest{X: float64(100 + 90*i), Y: float64(700 - 60*i)}
		if code := postJSON(t, durable+"/v1/objects", obj, &dresp); code != http.StatusOK {
			t.Fatalf("durable insert: status %d", code)
		}
		if code := postJSON(t, ref+"/v1/objects", obj, &rresp); code != http.StatusOK {
			t.Fatalf("reference insert: status %d", code)
		}
		if dresp.ID != rresp.ID {
			t.Fatalf("insert %d: durable id %d, reference id %d", i, dresp.ID, rresp.ID)
		}
	}
	for _, id := range []int{3, 17, 42} {
		for _, base := range []string{durable, ref} {
			if code := doDelete(t, base+"/v1/objects/"+itoa(id)); code != http.StatusNoContent {
				t.Fatalf("delete %d on %s: status %d", id, base, code)
			}
		}
	}
	var dresp, rresp api.ObjectResponse
	if code := postJSON(t, durable+"/v1/network/objects", api.NetworkObjectRequest{Vertex: 9}, &dresp); code != http.StatusOK {
		t.Fatalf("durable network insert: status %d", code)
	}
	if code := postJSON(t, ref+"/v1/network/objects", api.NetworkObjectRequest{Vertex: 9}, &rresp); code != http.StatusOK {
		t.Fatalf("reference network insert: status %d", code)
	}
}

// probeKNN opens a fresh plane and network session and returns their
// kNN answers at fixed probe positions.
func probeKNN(t *testing.T, base string) (plane, network []int) {
	t.Helper()
	var planeSess, netSess api.CreateSessionResponse
	if code := postJSON(t, base+"/v1/sessions", api.CreateSessionRequest{K: 5}, &planeSess); code != http.StatusOK {
		t.Fatalf("create plane session: status %d", code)
	}
	if code := postJSON(t, base+"/v1/sessions", api.CreateSessionRequest{K: 3, Network: true}, &netSess); code != http.StatusOK {
		t.Fatalf("create network session: status %d", code)
	}
	var presp api.UpdateResponse
	if code := postJSON(t, base+"/v1/update", api.UpdateRequest{
		Updates: []api.UpdateEntry{{Session: planeSess.Session, X: 512, Y: 316}},
	}, &presp); code != http.StatusOK {
		t.Fatalf("plane update: status %d", code)
	}
	if presp.Results[0].Error != "" {
		t.Fatalf("plane update: %s", presp.Results[0].Error)
	}
	var nresp api.UpdateResponse
	if code := postJSON(t, base+"/v1/network/update", api.NetworkUpdateRequest{
		Updates: []api.NetworkUpdateEntry{{Session: netSess.Session, U: 5, V: 6, T: 0.25}},
	}, &nresp); code != http.StatusOK {
		t.Fatalf("network update: status %d", code)
	}
	if nresp.Results[0].Error != "" {
		t.Fatalf("network update: %s", nresp.Results[0].Error)
	}
	return presp.Results[0].KNN, nresp.Results[0].KNN
}

// TestServerCrashRestartEquivalence kills the durable server mid-flight
// (no manager Close, so no final checkpoint) and restarts it on the same
// data dir: every HTTP answer — plane and network sessions, stats, the
// next assigned object id — must match an in-process reference server
// that never crashed.
func TestServerCrashRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(t)

	refEngine, err := insq.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refServer := httptest.NewServer(newServer(refEngine, false).Handler())
	t.Cleanup(func() { refServer.Close(); refEngine.Close() })

	ts1, e1, _ := startDurable(t, cfg, dir)
	driveMutations(t, ts1.URL, refServer.URL)
	wantPlane, wantNet := probeKNN(t, refServer.URL)
	gotPlane, gotNet := probeKNN(t, ts1.URL)
	if !reflect.DeepEqual(gotPlane, wantPlane) || !reflect.DeepEqual(gotNet, wantNet) {
		t.Fatalf("pre-crash drift: plane %v vs %v, network %v vs %v", gotPlane, wantPlane, gotNet, wantNet)
	}

	// Crash: tear down the HTTP stack and engine but abandon the manager
	// without Close — no final checkpoint, the WAL tail alone must carry
	// the recovery (fsync=always means every acknowledged batch is on
	// disk).
	ts1.Close()
	e1.Close()

	ts2, e2, mgr2 := startDurable(t, cfg, dir)
	t.Cleanup(func() {
		ts2.Close()
		mgr2.Close()
		e2.Close()
	})
	ws := mgr2.Stats()
	if ws.ReplayedBatches == 0 {
		t.Fatal("restart replayed no WAL batches despite the missing final checkpoint")
	}
	gotPlane, gotNet = probeKNN(t, ts2.URL)
	if !reflect.DeepEqual(gotPlane, wantPlane) {
		t.Fatalf("plane kNN after restart: %v, want %v", gotPlane, wantPlane)
	}
	if !reflect.DeepEqual(gotNet, wantNet) {
		t.Fatalf("network kNN after restart: %v, want %v", gotNet, wantNet)
	}

	// Id continuity through the HTTP stack: the next insert lands on the
	// same id the uncrashed reference assigns.
	var dresp, rresp api.ObjectResponse
	if code := postJSON(t, ts2.URL+"/v1/objects", api.ObjectRequest{X: 1, Y: 2}, &dresp); code != http.StatusOK {
		t.Fatalf("post-restart insert: status %d", code)
	}
	if code := postJSON(t, refServer.URL+"/v1/objects", api.ObjectRequest{X: 1, Y: 2}, &rresp); code != http.StatusOK {
		t.Fatalf("reference insert: status %d", code)
	}
	if dresp.ID != rresp.ID {
		t.Fatalf("post-restart id %d, reference %d", dresp.ID, rresp.ID)
	}

	// The stats surface reports the recovery.
	r, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.WAL == nil {
		t.Fatal("stats response carries no wal section on a durable server")
	}
	if stats.WAL.ReplayedBatches == 0 || stats.WAL.Policy != "always" {
		t.Fatalf("wal stats: %+v", stats.WAL)
	}
}

// TestServerNotReadyDuringRecovery asserts the boot-time readiness gate:
// before the engine is published every route except the liveness probe
// answers 503 with a Retry-After hint (liveness /healthz answers 200 the
// whole time — the process is up), and traffic flows once setEngine runs.
func TestServerNotReadyDuringRecovery(t *testing.T) {
	hs := server.NewPending(server.Options{})
	ts := httptest.NewServer(hs.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/stats", "/readyz", "/v1/sessions"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s before ready: status %d, want 503", path, r.StatusCode)
		}
		if ra := r.Header.Get("Retry-After"); ra == "" {
			t.Fatalf("GET %s before ready: no Retry-After header", path)
		}
		r.Body.Close()
	}
	r0, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r0.Body.Close()
	if r0.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz before ready: status %d, want 200 (liveness is not gated)", r0.StatusCode)
	}

	cfg := recoveryConfig(t)
	e, err := insq.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	hs.SetEngine(e)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz after setEngine: status %d", r.StatusCode)
	}
}
