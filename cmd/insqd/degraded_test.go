package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	insq "repro"
	"repro/internal/api"
	"repro/internal/fault"
	"repro/internal/index"
	"repro/internal/wal"
)

// TestDegradedModeHTTP exercises the degradation ladder over the wire:
// with a persistent injected fsync failure the server answers object
// writes with 503 + Retry-After while location updates and /v1/stats
// keep serving, /readyz flips to 503 (liveness /healthz stays 200), and
// once the fault is disarmed the WAL's heal probe restores writes and
// readiness without a restart.
func TestDegradedModeHTTP(t *testing.T) {
	defer fault.DisarmAll()
	cfg := recoveryConfig(t)
	mgr, err := wal.Open(index.Config{
		Bounds:       cfg.Bounds,
		Objects:      cfg.Objects,
		Network:      cfg.Network,
		NetworkSites: cfg.NetworkSites,
	}, wal.Options{
		Dir:          t.TempDir(),
		Sync:         wal.SyncAlways,
		DegradeAfter: 2,
		ProbeEvery:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = mgr
	e, err := insq.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { mgr.Close(); e.Close(); mgr.Store().Close() }()
	ts := httptest.NewServer(newServer(e, false).Handler())
	defer ts.Close()

	var sresp api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3}, &sresp); code != http.StatusOK {
		t.Fatalf("create session: status %d", code)
	}
	var oresp api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 500, Y: 500}, &oresp); code != http.StatusOK {
		t.Fatalf("healthy insert: status %d", code)
	}

	// Break the disk and push writes until the engine degrades.
	fault.WALFsyncErr.Arm(fault.Spec{})
	for i := 0; i < 3 && !e.Degraded(); i++ {
		var r api.ErrorResponse
		postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 600, Y: 600}, &r)
	}
	if !e.Degraded() {
		t.Fatal("engine not degraded after repeated write failures")
	}

	// Degraded contract over HTTP: writes 503 + Retry-After, reads 200.
	resp, err := http.Post(ts.URL+"/v1/objects", "application/json",
		strings.NewReader(`{"x":601,"y":601}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded insert: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded insert: no Retry-After header")
	}

	var uresp api.UpdateResponse
	upd := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: sresp.Session, X: 400, Y: 400}}}
	if code := postJSON(t, ts.URL+"/v1/update", upd, &uresp); code != http.StatusOK {
		t.Fatalf("location update while degraded: status %d, want 200", code)
	}
	if uresp.Results[0].Error != "" {
		t.Fatalf("location update while degraded errored: %s", uresp.Results[0].Error)
	}

	var stats api.StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats while degraded: status %d", code)
	}
	if !stats.Degraded || stats.WAL == nil || !stats.WAL.Degraded {
		t.Fatalf("stats while degraded: degraded=%v wal=%+v", stats.Degraded, stats.WAL)
	}

	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: status %d, want 503", r.StatusCode)
	} else {
		r.Body.Close()
	}
	if r, _ := http.Get(ts.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded: status %d, want 200 (liveness)", r.StatusCode)
	} else {
		r.Body.Close()
	}

	// Heal: disarm and poll writes back to 200.
	fault.WALFsyncErr.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var r api.ObjectResponse
		if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 700, Y: 700}, &r); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never recovered over HTTP after the fault was disarmed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz after heal: status %d, want 200", r.StatusCode)
	} else {
		r.Body.Close()
	}
}
