package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	insq "repro"
	"repro/internal/api"
)

func newTestServer(t *testing.T) (*httptest.Server, *insq.Engine) {
	t.Helper()
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  4,
		Bounds:  bounds,
		Objects: insq.UniformPoints(500, bounds, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer((&server{e: e}).handler())
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e
}

func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode < 300 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r.StatusCode
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	return r.StatusCode
}

// TestServerEndToEnd exercises the full HTTP serving flow: session create,
// batched updates, data updates with result invalidation, stats, close.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	var created api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3}, &created); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	if created.Session == 0 {
		t.Fatal("zero session id")
	}

	var upd api.UpdateResponse
	req := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: created.Session, X: 500, Y: 500}}}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if len(upd.Results) != 1 || upd.Results[0].Error != "" || len(upd.Results[0].KNN) != 3 {
		t.Fatalf("update results: %+v", upd.Results)
	}

	// Insert an object at the query position; it must appear in the next
	// result (the engine invalidates the session lazily).
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 500, Y: 500}, &obj); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update 2: status %d", code)
	}
	if len(upd.Results[0].KNN) == 0 || upd.Results[0].KNN[0] != obj.ID {
		t.Fatalf("inserted object %d not the NN: %v", obj.ID, upd.Results[0].KNN)
	}
	if code := doDelete(t, fmt.Sprintf("%s/v1/objects/%d", ts.URL, obj.ID)); code != http.StatusNoContent {
		t.Fatalf("delete object: status %d", code)
	}

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Sessions != 1 || st.Updates != 2 || st.Epoch != 2 || st.Shards != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Latency.Count != st.Updates {
		t.Fatalf("latency count %d != updates %d", st.Latency.Count, st.Updates)
	}

	if code := doDelete(t, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, created.Session)); code != http.StatusNoContent {
		t.Fatalf("close session: status %d", code)
	}
	if code := doDelete(t, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, created.Session)); code != http.StatusNotFound {
		t.Fatalf("double close: status %d", code)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	// Malformed bodies and ids are 400s.
	r, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", r.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("k=0: status %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/sessions/notanumber"); code != http.StatusBadRequest {
		t.Errorf("bad id: status %d", code)
	}

	// Unknown sessions inside a batch are per-entry errors, not HTTP errors.
	var upd api.UpdateResponse
	req := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: 999, X: 1, Y: 1}}}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if upd.Results[0].Error == "" {
		t.Error("unknown session produced no error")
	}

	// Removing an unknown object is a 404 and does not advance the data
	// epoch; inserting outside the data space is the client's fault.
	if code := doDelete(t, ts.URL+"/v1/objects/99999"); code != http.StatusNotFound {
		t.Errorf("unknown object delete: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: -5000, Y: -5000}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-bounds insert: status %d", code)
	}
	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Epoch != 0 {
		t.Errorf("failed remove advanced epoch to %d", st.Epoch)
	}

	if r, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
	r.Body.Close()
}
