package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	insq "repro"
	"repro/internal/api"
)

func newTestServer(t *testing.T) (*httptest.Server, *insq.Engine) {
	t.Helper()
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  4,
		Bounds:  bounds,
		Objects: insq.UniformPoints(500, bounds, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(e, false).Handler())
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e
}

func postJSON(t *testing.T, url string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode < 300 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r.StatusCode
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	return r.StatusCode
}

// TestServerEndToEnd exercises the full HTTP serving flow: session create,
// batched updates, data updates with result invalidation, stats, close.
func TestServerEndToEnd(t *testing.T) {
	ts, _ := newTestServer(t)

	var created api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3}, &created); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	if created.Session == 0 {
		t.Fatal("zero session id")
	}

	var upd api.UpdateResponse
	req := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: created.Session, X: 500, Y: 500}}}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if len(upd.Results) != 1 || upd.Results[0].Error != "" || len(upd.Results[0].KNN) != 3 {
		t.Fatalf("update results: %+v", upd.Results)
	}

	// Insert an object at the query position; it must appear in the next
	// result (the engine invalidates the session lazily).
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 500, Y: 500}, &obj); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update 2: status %d", code)
	}
	if len(upd.Results[0].KNN) == 0 || upd.Results[0].KNN[0] != obj.ID {
		t.Fatalf("inserted object %d not the NN: %v", obj.ID, upd.Results[0].KNN)
	}
	if code := doDelete(t, fmt.Sprintf("%s/v1/objects/%d", ts.URL, obj.ID)); code != http.StatusNoContent {
		t.Fatalf("delete object: status %d", code)
	}

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Sessions != 1 || st.Updates != 2 || st.Epoch != 2 || st.Shards != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Latency.Count != st.Updates {
		t.Fatalf("latency count %d != updates %d", st.Latency.Count, st.Updates)
	}

	if code := doDelete(t, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, created.Session)); code != http.StatusNoContent {
		t.Fatalf("close session: status %d", code)
	}
	if code := doDelete(t, fmt.Sprintf("%s/v1/sessions/%d", ts.URL, created.Session)); code != http.StatusNotFound {
		t.Fatalf("double close: status %d", code)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	// Malformed bodies and ids are 400s.
	r, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", r.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("k=0: status %d", code)
	}
	if code := doDelete(t, ts.URL+"/v1/sessions/notanumber"); code != http.StatusBadRequest {
		t.Errorf("bad id: status %d", code)
	}

	// Unknown sessions inside a batch are per-entry errors, not HTTP errors.
	var upd api.UpdateResponse
	req := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: 999, X: 1, Y: 1}}}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if upd.Results[0].Error == "" {
		t.Error("unknown session produced no error")
	}

	// Removing an unknown object is a 404 and does not advance the data
	// epoch; inserting outside the data space is the client's fault.
	if code := doDelete(t, ts.URL+"/v1/objects/99999"); code != http.StatusNotFound {
		t.Errorf("unknown object delete: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: -5000, Y: -5000}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-bounds insert: status %d", code)
	}
	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Epoch != 0 {
		t.Errorf("failed remove advanced epoch to %d", st.Epoch)
	}

	if r, err = http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
	r.Body.Close()
}

// sseReader incrementally parses a text/event-stream body.
type sseReader struct {
	r *bufio.Reader
}

// next returns the next event's name and decoded SessionEvent payload,
// skipping comment keep-alives.
func (s *sseReader) next(t *testing.T) (string, api.SessionEvent) {
	t.Helper()
	var name string
	var data []byte
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if name == "" && data == nil {
				continue // stray separator
			}
			var ev api.SessionEvent
			if len(data) > 0 {
				if err := json.Unmarshal(data, &ev); err != nil {
					t.Fatalf("bad event payload %q: %v", data, err)
				}
			}
			return name, ev
		case strings.HasPrefix(line, ":"): // comment / ping
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
}

// TestServerSSEPush is the acceptance scenario end to end: an SSE
// subscriber receives the kNN delta caused by an object insert without
// the client ever calling /v1/update again, the broker state is visible
// in /v1/stats, and shutdown delivers a final bye event.
func TestServerSSEPush(t *testing.T) {
	ts, e := newTestServer(t)

	var created api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3}, &created); code != http.StatusOK {
		t.Fatalf("create: status %d", code)
	}
	sid := created.Session

	// Give the session a position (the last poll it will ever make).
	var upd api.UpdateResponse
	req := api.UpdateRequest{Updates: []api.UpdateEntry{{Session: sid, X: 500, Y: 500}}}
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	baseline := upd.Results[0].KNN

	// Unknown session ids are a clean 404, not a hanging stream.
	r, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/events", ts.URL, sid+999))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown session: status %d", r.StatusCode)
	}

	r, err = http.Get(fmt.Sprintf("%s/v1/sessions/%d/events", ts.URL, sid))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	sse := &sseReader{r: bufio.NewReader(r.Body)}

	name, snap := sse.next(t)
	if name != "snapshot" || snap.Session != sid {
		t.Fatalf("first event = %s %+v, want a snapshot for session %d", name, snap, sid)
	}
	if len(snap.KNN) != 3 {
		t.Fatalf("snapshot kNN %v, want 3 members", snap.KNN)
	}

	// Insert an object a hair from the session's position: it must become
	// its nearest neighbor and arrive as a pushed delta — no /v1/update.
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 500.01, Y: 500.01}, &obj); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}

	name, ev := sse.next(t)
	if name != "data" || ev.Cause != "data" {
		t.Fatalf("pushed event = %s %+v, want cause data", name, ev)
	}
	added := false
	for _, id := range ev.Added {
		added = added || id == obj.ID
	}
	if !added {
		t.Fatalf("delta %+v does not add inserted object %d", ev, obj.ID)
	}
	inKNN := false
	for _, id := range ev.KNN {
		inKNN = inKNN || id == obj.ID
	}
	if !inKNN {
		t.Fatalf("pushed kNN %v misses object %d", ev.KNN, obj.ID)
	}
	if ev.Seq <= snap.Seq {
		t.Fatalf("event seq %d not after snapshot seq %d", ev.Seq, snap.Seq)
	}
	if sameSet(ev.KNN, baseline) {
		t.Fatal("pushed kNN identical to the pre-insert baseline")
	}

	// The broker's fan-out state is observable in /v1/stats.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if st.Stream.Subscribers != 1 || st.Stream.WatchedSessions != 1 {
		t.Errorf("stream stats = %+v, want 1 subscriber watching 1 session", st.Stream)
	}
	if st.Stream.Published == 0 || st.Stream.Delivered == 0 {
		t.Errorf("stream counters empty: %+v", st.Stream)
	}

	// Graceful shutdown: closing the broker (what insqd does on SIGTERM)
	// must terminate the stream with a bye event, not a reset.
	e.Stream().Close()
	name, _ = sse.next(t)
	if name != "bye" {
		t.Fatalf("final event = %s, want bye", name)
	}
}

// TestServerSSEMultiSession: the firehose variant streams deltas for all
// listed sessions and skips unknown ids instead of failing the stream.
func TestServerSSEMultiSession(t *testing.T) {
	ts, _ := newTestServer(t)

	var a, b api.CreateSessionResponse
	postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 2}, &a)
	postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 2}, &b)
	req := api.UpdateRequest{Updates: []api.UpdateEntry{
		{Session: a.Session, X: 200, Y: 200},
		{Session: b.Session, X: 800, Y: 800},
	}}
	var upd api.UpdateResponse
	if code := postJSON(t, ts.URL+"/v1/update", req, &upd); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}

	url := fmt.Sprintf("%s/v1/events?sessions=%d,%d,424242", ts.URL, a.Session, b.Session)
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("multi events: status %d", r.StatusCode)
	}
	sse := &sseReader{r: bufio.NewReader(r.Body)}
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		name, ev := sse.next(t)
		if name != "snapshot" {
			t.Fatalf("event %d = %s, want snapshot", i, name)
		}
		seen[ev.Session] = true
	}
	if !seen[a.Session] || !seen[b.Session] {
		t.Fatalf("snapshots for %v, want both live sessions", seen)
	}

	// One insert near each session: both must receive their own delta.
	postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 200.01, Y: 200.01}, nil)
	postJSON(t, ts.URL+"/v1/objects", api.ObjectRequest{X: 800.01, Y: 800.01}, nil)
	got := map[uint64]bool{}
	for len(got) < 2 {
		name, ev := sse.next(t)
		if name != "data" {
			continue
		}
		got[ev.Session] = true
	}

	// A malformed sessions list is a 400, not a stream.
	r2, err := http.Get(ts.URL + "/v1/events?sessions=1,nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad sessions list: status %d", r2.StatusCode)
	}
}

// sameSet reports equal membership ignoring order.
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[int]bool, len(a))
	for _, id := range a {
		in[id] = true
	}
	for _, id := range b {
		if !in[id] {
			return false
		}
	}
	return true
}
