package main

import (
	insq "repro"
	"repro/internal/server"
)

// newServer adapts the historical test construction shape to the
// extracted internal/server package.
func newServer(e *insq.Engine, pprofOn bool) *server.Server {
	return server.New(e, server.Options{Pprof: pprofOn})
}
