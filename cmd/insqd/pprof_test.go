package main

import (
	"net/http"
	"net/http/httptest"
	"testing"

	insq "repro"
)

// TestPprofOptIn asserts the profiling endpoints exist only behind the
// -pprof flag.
func TestPprofOptIn(t *testing.T) {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(100, 100))
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  2,
		Bounds:  bounds,
		Objects: insq.UniformPoints(50, bounds, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	off := httptest.NewServer(newServer(e, false).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newServer(e, true).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: status %d, want 200", resp.StatusCode)
	}
}
