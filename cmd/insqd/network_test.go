package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	insq "repro"
	"repro/internal/api"
	"repro/internal/workload"
)

func itoa(v int) string { return strconv.Itoa(v) }

func getJSON(t *testing.T, url string, resp any) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil && r.StatusCode < 300 {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatal(err)
		}
	}
	return r.StatusCode
}

// newNetworkTestServer boots a server with both a plane and a road-network
// side, mirroring `insqd -network-grid 16 -network-sites 40`.
func newNetworkTestServer(t *testing.T) (*httptest.Server, *insq.Engine, *insq.RoadNetwork) {
	t.Helper()
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	g, err := workload.Network(16, bounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites, err := workload.NetworkSites(g, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:       4,
		Bounds:       bounds,
		Objects:      insq.UniformPoints(200, bounds, 1),
		Network:      g,
		NetworkSites: sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(e, false).Handler())
	t.Cleanup(func() {
		ts.Close()
		e.Close()
	})
	return ts, e, g
}

// TestServerNetworkEndToEnd drives the road-network serving flow over
// HTTP: create a network session, feed edge positions, mutate the site
// set and observe the session's kNN change — the acceptance flow of
// network serving parity at the outermost surface.
func TestServerNetworkEndToEnd(t *testing.T) {
	ts, e, g := newNetworkTestServer(t)

	var sess api.CreateSessionResponse
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3, Network: true}, &sess); code != 200 {
		t.Fatalf("create network session: status %d", code)
	}

	// Park the session at a free vertex.
	home := 0
	st, err := e.Stats()
	if err != nil {
		t.Fatal(err)
	}
	initialSites := st.NetworkObjects
	for {
		if _, err := e.InsertNetworkObject(home); err == nil {
			if err := e.RemoveNetworkObject(home); err != nil {
				t.Fatal(err)
			}
			break // home was free (probe insert undone)
		}
		home++
	}
	var upd api.UpdateResponse
	req := api.NetworkUpdateRequest{Updates: []api.NetworkUpdateEntry{{Session: sess.Session, U: home, V: home}}}
	if code := postJSON(t, ts.URL+"/v1/network/update", req, &upd); code != 200 {
		t.Fatalf("network update: status %d", code)
	}
	if upd.Results[0].Error != "" {
		t.Fatalf("network update error: %s", upd.Results[0].Error)
	}
	baseline := upd.Results[0].KNN
	for _, id := range baseline {
		if id == home {
			t.Fatalf("baseline kNN %v already contains %d", baseline, home)
		}
	}

	// Insert a site at the session's own vertex over HTTP: it must lead
	// the next answer.
	var obj api.ObjectResponse
	if code := postJSON(t, ts.URL+"/v1/network/objects", api.NetworkObjectRequest{Vertex: home}, &obj); code != 200 {
		t.Fatalf("insert network object: status %d", code)
	}
	if obj.ID != home {
		t.Fatalf("network object id = %d, want the vertex %d", obj.ID, home)
	}
	if code := postJSON(t, ts.URL+"/v1/network/update", req, &upd); code != 200 {
		t.Fatalf("network update: status %d", code)
	}
	if knn := upd.Results[0].KNN; len(knn) == 0 || knn[0] != home {
		t.Fatalf("post-insert kNN %v does not lead with the site at the query position %d", knn, home)
	}

	// Remove it again: the answer reverts to the baseline set.
	if code := doDelete(t, ts.URL+"/v1/network/objects/"+itoa(home)); code != 204 {
		t.Fatalf("delete network object: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/v1/network/update", req, &upd); code != 200 {
		t.Fatalf("network update: status %d", code)
	}
	if !sameSet(upd.Results[0].KNN, baseline) {
		t.Fatalf("post-remove kNN %v, want baseline %v", upd.Results[0].KNN, baseline)
	}

	// Error surface: duplicate insert 409, unknown removal 404, vertex out
	// of range 400, plane update against a network session is a per-entry
	// error (HTTP 200).
	if code := postJSON(t, ts.URL+"/v1/network/objects", api.NetworkObjectRequest{Vertex: firstSite(t, e)}, nil); code != 409 {
		t.Fatalf("duplicate site insert: status %d, want 409", code)
	}
	if code := doDelete(t, ts.URL+"/v1/network/objects/"+itoa(home)); code != 404 {
		t.Fatalf("remove of free vertex: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/v1/network/objects", api.NetworkObjectRequest{Vertex: g.NumVertices()}, nil); code != 400 {
		t.Fatalf("out-of-range vertex insert: status %d, want 400", code)
	}
	var planeUpd api.UpdateResponse
	if code := postJSON(t, ts.URL+"/v1/update", api.UpdateRequest{Updates: []api.UpdateEntry{{Session: sess.Session, X: 1, Y: 1}}}, &planeUpd); code != 200 {
		t.Fatalf("plane update: status %d", code)
	}
	if planeUpd.Results[0].Error == "" {
		t.Fatal("plane update against a network session did not error")
	}

	// Stats expose the network object count.
	var stats api.StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != 200 {
		t.Fatalf("stats: status %d", code)
	}
	if stats.NetworkObjects != initialSites {
		t.Fatalf("stats network_objects = %d, want %d", stats.NetworkObjects, initialSites)
	}
}

// TestServerNetworkSessionOnPlaneOnlyServer: asking for a network session
// on a plane-only server is a clean 400.
func TestServerNetworkSessionOnPlaneOnlyServer(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postJSON(t, ts.URL+"/v1/sessions", api.CreateSessionRequest{K: 3, Network: true}, nil); code != 400 {
		t.Fatalf("network session on plane-only server: status %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/network/objects", api.NetworkObjectRequest{Vertex: 1}, nil); code != 400 {
		t.Fatalf("network object on plane-only server: status %d, want 400", code)
	}
}

func firstSite(t *testing.T, e *insq.Engine) int {
	t.Helper()
	// Probe vertices until one rejects insertion as a duplicate — that
	// one is a live site. Cheap on the small test grid.
	for v := 0; ; v++ {
		if _, err := e.InsertNetworkObject(v); err != nil {
			return v
		}
		if err := e.RemoveNetworkObject(v); err != nil {
			t.Fatal(err)
		}
	}
}
