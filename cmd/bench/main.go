// Command bench regenerates the reproduction experiments of EXPERIMENTS.md.
// Each experiment prints one table row per (parameter, processor) pair:
//
//	bench -exp E4          # run one experiment
//	bench -exp all         # run everything (minutes)
//	bench -scale 4         # divide workload sizes by 4 for a quick pass
//
// The authoritative experiment list is the registry below — the -exp help
// string and the unknown-id error are generated from it, so the list
// cannot drift from the code. It covers the paper tables (E1–E12), the
// ablations (A1–A3) and the serving records ENGINE (online plane
// serving), STREAM (continuous-query push), NETWORK (road-network
// serving), WAL (durability overhead and crash recovery), OBS
// (observability overhead: metrics-on vs noop serving rate), CHAOS
// (fault injection: degrade/heal, shed, deadline drops, crash recovery)
// and SERVE (wire-protocol A/B: JSON-per-request vs binary streaming
// ingest against an in-process serving stack). With -benchout and a
// single record experiment the result is written as the JSON record CI
// archives and benchguard gates (BENCH_engine.json / BENCH_stream.json /
// BENCH_network.json / BENCH_wal.json / BENCH_obs.json /
// BENCH_chaos.json / BENCH_serve.json). -seed offsets every workload
// seed for seed-sensitivity reruns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

// runner is one experiment id: either a table experiment (fn) or a
// serving-record experiment (record) whose result can be written to
// -benchout. Exactly one of fn/record is set.
type runner struct {
	id     string
	doc    string
	fn     func(experiments.Config) ([]experiments.Row, error)
	record func(experiments.Config) (any, error)
}

// runners is the single source of truth for valid experiment ids.
var runners = []runner{
	{id: "E1", doc: "Figure 1: MIS/INS of the 12-object fixture",
		fn: func(experiments.Config) ([]experiments.Row, error) { return experiments.E1() }},
	{id: "E2", doc: "Figure 2: network INS, Theorem 1",
		fn: func(experiments.Config) ([]experiments.Row, error) { return experiments.E2() }},
	{id: "E3", doc: "Figure 4: validation/invalidations along a walk", fn: experiments.E3},
	{id: "E4", doc: "recomputations, shipped objects and us/step vs k (E4+E5)", fn: experiments.E4E5},
	{id: "E6", doc: "prefetch ratio rho sweep", fn: experiments.E6},
	{id: "E7", doc: "dataset size sweep", fn: experiments.E7},
	{id: "E8", doc: "road network comparison incl. Theorem-2 ablation (E8+E9)", fn: experiments.E8E9},
	{id: "E11", doc: "data-object update rate sweep", fn: experiments.E11},
	{id: "E12", doc: "order-k precomputation blow-up vs INS", fn: experiments.E12},
	{id: "A1", doc: "ablation: local re-rank path", fn: experiments.AblationRerank},
	{id: "A2", doc: "ablation: VoR-tree vs R-tree kNN", fn: experiments.AblationVorTree},
	{id: "A3", doc: "ablation: order-k cell construction candidates", fn: experiments.AblationOrderKConstruction},
	{id: "ENGINE", doc: "online serving benchmark (shared snapshot store)",
		record: func(cfg experiments.Config) (any, error) { return experiments.EngineBench(cfg) }},
	{id: "STREAM", doc: "continuous-query push benchmark (insert-to-push latency)",
		record: func(cfg experiments.Config) (any, error) { return experiments.StreamBench(cfg) }},
	{id: "NETWORK", doc: "road-network serving benchmark (site churn, epoch publication)",
		record: func(cfg experiments.Config) (any, error) { return experiments.NetworkBench(cfg) }},
	{id: "WAL", doc: "durability benchmark (WAL append overhead, crash recovery)",
		record: func(cfg experiments.Config) (any, error) { return experiments.DurabilityBench(cfg) }},
	{id: "OBS", doc: "observability benchmark (metrics-on vs noop serving rate, scrape cost)",
		record: func(cfg experiments.Config) (any, error) { return experiments.ObsBench(cfg) }},
	{id: "CHAOS", doc: "fault-injection experiment (degrade/heal round trips, shed, deadline drops, crash recovery)",
		record: func(cfg experiments.Config) (any, error) { return experiments.ChaosBench(cfg) }},
	{id: "SERVE", doc: "wire-protocol A/B benchmark (JSON-per-request vs binary streaming ingest)",
		record: func(cfg experiments.Config) (any, error) { return experiments.ServeBench(cfg) }},
}

// ids returns the registry's experiment ids in order.
func ids() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.id
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	exp := flag.String("exp", "all",
		"experiment id ("+strings.Join(ids(), ",")+") or 'all'")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor (>=1)")
	seed := flag.Int64("seed", 0, "offset every workload seed (datasets, trajectories, churn RNGs) to probe seed sensitivity; 0 = the canonical published tables (E1/E2 fixtures are seed-independent)")
	benchout := flag.String("benchout", "", "with a single record experiment (ENGINE, STREAM, NETWORK, WAL, OBS, CHAOS, SERVE): write the result as JSON to this file (e.g. BENCH_engine.json)")
	vertices := flag.Int("vertices", 0, "NETWORK: override the road-network vertex count (street grid is ceil(sqrt(vertices)) on a side, site density held fixed); 0 = the canonical 4096-vertex grid")
	flag.Parse()
	if *scale < 1 {
		*scale = 1
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Vertices: *vertices}

	want := strings.ToUpper(*exp)
	if want != "ALL" {
		known := false
		for _, r := range runners {
			known = known || want == r.id
		}
		if !known {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q; valid ids: %s, or 'all'\n",
				*exp, strings.Join(ids(), ", "))
			os.Exit(2)
		}
	}
	// The record experiments share the -benchout path. Under 'all' the
	// flag keeps its historical meaning (the ENGINE record) rather than
	// being silently dropped.
	writeRecord := func(id string, res any) {
		if *benchout == "" {
			return
		}
		if want == "ALL" && id != "ENGINE" {
			log.Printf("note: -benchout with -exp all writes the ENGINE record only; run -exp %s -benchout <file> for the %s record", id, id)
			return
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("%s: encode: %v", id, err)
		}
		if err := os.WriteFile(*benchout, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		log.Printf("wrote %s", *benchout)
	}
	for _, r := range runners {
		if want != "ALL" && want != r.id {
			continue
		}
		fmt.Printf("== %s: %s\n", r.id, r.doc)
		if r.record != nil {
			res, err := r.record(cfg)
			if err != nil {
				log.Fatalf("%s: %v", r.id, err)
			}
			fmt.Println(res)
			writeRecord(r.id, res)
			fmt.Println()
			continue
		}
		rows, err := r.fn(cfg)
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		for _, row := range rows {
			fmt.Println(row)
		}
		fmt.Println()
	}
}
