// Command bench regenerates the reproduction experiments of EXPERIMENTS.md.
// Each experiment prints one table row per (parameter, processor) pair:
//
//	bench -exp E4          # run one experiment
//	bench -exp all         # run everything (minutes)
//	bench -scale 4         # divide workload sizes by 4 for a quick pass
//
// Experiments: E1 (Figure 1 MIS/INS), E2 (Figure 2 network INS),
// E3 (Figure 4 validation behavior), E4/E5 (recomputation & time vs k),
// E6 (prefetch ratio ρ sweep), E7 (dataset size sweep), E8/E9 (road
// networks incl. Theorem-2 ablation), E11 (data-update rate sweep), the
// ablations A1 (local re-rank), A2 (VoR-tree vs R-tree kNN), A3 (order-k
// cell construction candidates), and the serving records ENGINE (online
// serving benchmark) and STREAM (continuous-query push benchmark:
// insert-to-push latency, coalesce/drop counters). With -benchout and a
// single record experiment the result is written as the JSON record CI
// archives (BENCH_engine.json / BENCH_stream.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	exp := flag.String("exp", "all", "experiment id (E1,E2,E3,E4,E6,E7,E8,E11,E12,A1,A2,A3,ENGINE,STREAM) or 'all'")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor (>=1)")
	benchout := flag.String("benchout", "", "with -exp ENGINE or -exp STREAM: write the result as JSON to this file (e.g. BENCH_engine.json)")
	flag.Parse()
	if *scale < 1 {
		*scale = 1
	}
	cfg := experiments.Config{Scale: *scale}

	type runner struct {
		id  string
		fn  func() ([]experiments.Row, error)
		doc string
	}
	runners := []runner{
		{"E1", func() ([]experiments.Row, error) { return experiments.E1() }, "Figure 1: MIS/INS of the 12-object fixture"},
		{"E2", func() ([]experiments.Row, error) { return experiments.E2() }, "Figure 2: network INS, Theorem 1"},
		{"E3", func() ([]experiments.Row, error) { return experiments.E3(cfg) }, "Figure 4: validation/invalidations along a walk"},
		{"E4", func() ([]experiments.Row, error) { return experiments.E4E5(cfg) }, "recomputations, shipped objects and us/step vs k (E4+E5)"},
		{"E6", func() ([]experiments.Row, error) { return experiments.E6(cfg) }, "prefetch ratio rho sweep"},
		{"E7", func() ([]experiments.Row, error) { return experiments.E7(cfg) }, "dataset size sweep"},
		{"E8", func() ([]experiments.Row, error) { return experiments.E8E9(cfg) }, "road network comparison incl. Theorem-2 ablation (E8+E9)"},
		{"E11", func() ([]experiments.Row, error) { return experiments.E11(cfg) }, "data-object update rate sweep"},
		{"E12", func() ([]experiments.Row, error) { return experiments.E12(cfg) }, "order-k precomputation blow-up vs INS"},
		{"A1", func() ([]experiments.Row, error) { return experiments.AblationRerank(cfg) }, "ablation: local re-rank path"},
		{"A2", func() ([]experiments.Row, error) { return experiments.AblationVorTree(cfg) }, "ablation: VoR-tree vs R-tree kNN"},
		{"A3", func() ([]experiments.Row, error) { return experiments.AblationOrderKConstruction(cfg) }, "ablation: order-k cell construction candidates"},
	}

	want := strings.ToUpper(*exp)
	if want != "ALL" {
		known := want == "ENGINE" || want == "STREAM"
		ids := make([]string, len(runners), len(runners)+2)
		for i, r := range runners {
			ids[i] = r.id
			known = known || want == r.id
		}
		if !known {
			fmt.Fprintf(os.Stderr, "bench: unknown experiment %q; valid ids: %s, or 'all'\n",
				*exp, strings.Join(append(ids, "ENGINE", "STREAM"), ", "))
			os.Exit(2)
		}
	}
	for _, r := range runners {
		if want != "ALL" && want != r.id {
			continue
		}
		fmt.Printf("== %s: %s\n", r.id, r.doc)
		rows, err := r.fn()
		if err != nil {
			log.Fatalf("%s: %v", r.id, err)
		}
		for _, row := range rows {
			fmt.Println(row)
		}
		fmt.Println()
	}
	// The record experiments: any-typed results so both serving benchmarks
	// share the -benchout path. Under 'all' the flag keeps its historical
	// meaning (the ENGINE record) rather than being silently dropped.
	writeRecord := func(id string, res any) {
		if *benchout == "" {
			return
		}
		if want == "ALL" && id != "ENGINE" {
			log.Printf("note: -benchout with -exp all writes the ENGINE record only; run -exp %s -benchout <file> for the %s record", id, id)
			return
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("%s: encode: %v", id, err)
		}
		if err := os.WriteFile(*benchout, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		log.Printf("wrote %s", *benchout)
	}
	if want == "ALL" || want == "ENGINE" {
		fmt.Println("== ENGINE: online serving benchmark (shared snapshot store)")
		res, err := experiments.EngineBench(cfg)
		if err != nil {
			log.Fatalf("ENGINE: %v", err)
		}
		fmt.Println(res)
		writeRecord("ENGINE", res)
	}
	if want == "ALL" || want == "STREAM" {
		fmt.Println("== STREAM: continuous-query push benchmark (insert-to-push latency)")
		res, err := experiments.StreamBench(cfg)
		if err != nil {
			log.Fatalf("STREAM: %v", err)
		}
		fmt.Println(res)
		writeRecord("STREAM", res)
	}
}
