// Command insq is the demonstration program (the CLI + SVG substitute for
// the paper's Scala Swing application). It runs in two modes, mirroring
// the original's Road Network mode and 2D Plane mode:
//
//	insq -mode plane   -n 400 -k 5 -rho 1.6 -steps 600 -frames 6 -out frames
//	insq -mode network -rows 24 -cols 24 -sites 80 -k 5 -steps 400
//
// At each sampled timestamp the program prints the query state (kNN set,
// influential neighbors, valid/invalid transitions) and optionally writes
// an SVG frame showing the data objects (orange), query (red), kNN set
// (green), INS (yellow), the order-k Voronoi cell (cyan/red) and the two
// validation circles — the view of Figures 3 and 4.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	insq "repro"
	"repro/internal/settings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insq: ")
	var (
		mode     = flag.String("mode", "plane", "demo mode: plane | network")
		n        = flag.Int("n", 400, "plane mode: number of data objects")
		k        = flag.Int("k", 5, "number of nearest neighbors")
		rho      = flag.Float64("rho", 1.6, "prefetch ratio (>= 1)")
		steps    = flag.Int("steps", 600, "timestamps to simulate")
		frames   = flag.Int("frames", 6, "SVG frames to write (0 = none)")
		out      = flag.String("out", "frames", "output directory for frames")
		rows     = flag.Int("rows", 24, "network mode: grid rows")
		cols     = flag.Int("cols", 24, "network mode: grid cols")
		sites    = flag.Int("sites", 80, "network mode: number of data objects")
		seed     = flag.Int64("seed", 1, "workload seed")
		loadPath = flag.String("load", "", "read demonstration settings from a JSON file (the demo's Read button)")
		savePath = flag.String("save", "", "record the demonstration settings to a JSON file (the demo's Save button)")
	)
	flag.Parse()

	// Assemble the settings from the flags, or read them from a file.
	s := settings.Default()
	if *loadPath != "" {
		var err error
		s, err = settings.Load(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded settings from %s\n", *loadPath)
	} else {
		s.Mode = settings.Mode(*mode)
		s.NumObjects = *n
		s.K = *k
		s.Rho = *rho
		s.Steps = *steps
		s.Frames = *frames
		s.OutDir = *out
		s.GridRows, s.GridCols, s.NumSites = *rows, *cols, *sites
		s.Seed = *seed
		if err := s.Validate(); err != nil {
			log.Fatal(err)
		}
	}
	if *savePath != "" {
		if err := s.Save(*savePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded settings to %s\n", *savePath)
	}

	switch s.Mode {
	case settings.ModePlane:
		if err := runPlane(s.NumObjects, s.K, s.Rho, s.Steps, s.Frames, s.OutDir, s.Seed); err != nil {
			log.Fatal(err)
		}
	case settings.ModeNetwork:
		if err := runNetwork(s.GridRows, s.GridCols, s.NumSites, s.K, s.Rho, s.Steps, s.Frames, s.OutDir, s.Seed); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q (want plane or network)", s.Mode)
	}
}

func runPlane(n, k int, rho float64, steps, frames int, out string, seed int64) error {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	ix, _, err := insq.BuildPlaneIndex(bounds, insq.UniformPoints(n, bounds, seed))
	if err != nil {
		return err
	}
	q, err := insq.NewPlaneQuery(ix, k, rho)
	if err != nil {
		return err
	}
	traj := insq.RandomWaypoint(bounds, steps, 2.5, seed+1)

	frameEvery := 0
	if frames > 0 {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		frameEvery = steps / frames
		if frameEvery == 0 {
			frameEvery = 1
		}
	}
	lastRecomp := 0
	rep, err := insq.RunPlane(q, traj, func(step int, pos insq.Point, knn []int) {
		m := q.Metrics()
		if m.Recomputations != lastRecomp {
			lastRecomp = m.Recomputations
			fmt.Printf("t=%-5d q=(%.1f, %.1f)  kNN set recomputed -> %v  (INS size %d)\n",
				step, pos.X, pos.Y, knn, len(q.INS()))
		}
		if frameEvery > 0 && step%frameEvery == 0 {
			doc, ferr := insq.RenderPlaneFrame(ix, q, pos, insq.PlaneFrameOptions{
				ShowVoronoiCells: true, ShowOrderKCell: true, ShowCircles: true,
			})
			if ferr != nil {
				log.Printf("frame at %d: %v", step, ferr)
				return
			}
			name := filepath.Join(out, fmt.Sprintf("plane_%05d.svg", step))
			if werr := os.WriteFile(name, []byte(doc), 0o644); werr != nil {
				log.Printf("frame at %d: %v", step, werr)
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n2D Plane mode: %s\n", rep)
	return nil
}

func runNetwork(rows, cols, sites, k int, rho float64, steps, frames int, out string, seed int64) error {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(8000, 8000))
	g, err := insq.GridNetwork(rows, cols, bounds, 0.25, 0.3, seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	siteIDs := rng.Perm(g.NumVertices())[:sites]
	d, err := insq.BuildNetworkVoronoi(g, siteIDs)
	if err != nil {
		return err
	}
	q, err := insq.NewNetworkQuery(d, k, rho)
	if err != nil {
		return err
	}
	route, err := insq.RandomWalkRoute(g, 0, float64(steps)*20, seed+2)
	if err != nil {
		return err
	}

	frameEvery := 0
	if frames > 0 {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		frameEvery = steps / frames
		if frameEvery == 0 {
			frameEvery = 1
		}
	}
	lastRecomp := 0
	rep, err := insq.RunNetwork(q, route, 20, func(step int, pos insq.NetworkPosition, knn []int) {
		m := q.Metrics()
		if m.Recomputations != lastRecomp {
			lastRecomp = m.Recomputations
			fmt.Printf("t=%-5d edge=(%d,%d)  kNN set recomputed -> %v  (INS size %d, subnetwork %d vertices)\n",
				step, pos.U, pos.V, knn, len(q.INS()), q.Subnetwork().G.NumVertices())
		}
		if frameEvery > 0 && step%frameEvery == 0 {
			doc := insq.RenderNetworkFrame(d, q, pos, insq.NetworkFrameOptions{ShowSubnetwork: true})
			name := filepath.Join(out, fmt.Sprintf("network_%05d.svg", step))
			if werr := os.WriteFile(name, []byte(doc), 0o644); werr != nil {
				log.Printf("frame at %d: %v", step, werr)
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nRoad Network mode: %s\n", rep)
	return nil
}
