// Command insgen generates the workloads the experiments and examples use
// and writes them as CSV, so datasets can be inspected, plotted, or reused
// outside the Go toolchain:
//
//	insgen -kind uniform   -n 10000 -seed 1 > objects.csv
//	insgen -kind clustered -n 10000 -clusters 8 -sigma 300 > objects.csv
//	insgen -kind grid      -n 4096 -jitter 0.2 > objects.csv
//	insgen -kind network   -rows 64 -cols 64 > edges.csv
//	insgen -kind trajectory -steps 5000 -steplen 8 > traj.csv
//
// Point CSV: x,y per line. Network CSV: ux,uy,vx,vy,weight per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	insq "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("insgen: ")
	var (
		kind     = flag.String("kind", "uniform", "uniform | clustered | grid | network | trajectory")
		n        = flag.Int("n", 10000, "number of points")
		seed     = flag.Int64("seed", 1, "generator seed")
		clusters = flag.Int("clusters", 8, "clustered: number of clusters")
		sigma    = flag.Float64("sigma", 300, "clustered: cluster stddev")
		jitter   = flag.Float64("jitter", 0.2, "grid: lattice jitter fraction")
		rows     = flag.Int("rows", 64, "network: grid rows")
		cols     = flag.Int("cols", 64, "network: grid cols")
		steps    = flag.Int("steps", 5000, "trajectory: number of steps")
		stepLen  = flag.Float64("steplen", 8, "trajectory: distance per step")
		size     = flag.Float64("size", 10000, "data space side length")
	)
	flag.Parse()

	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(*size, *size))
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "uniform":
		writePoints(w, insq.UniformPoints(*n, bounds, *seed))
	case "clustered":
		pts, err := insq.ClusteredPoints(*n, *clusters, *sigma, bounds, *seed)
		if err != nil {
			log.Fatal(err)
		}
		writePoints(w, pts)
	case "grid":
		writePoints(w, insq.GridPoints(*n, bounds, *jitter, *seed))
	case "network":
		g, err := insq.GridNetwork(*rows, *cols, bounds, 0.25, 0.3, *seed)
		if err != nil {
			log.Fatal(err)
		}
		g.Edges(func(u, v int, weight float64) {
			pu, pv := g.Point(u), g.Point(v)
			fmt.Fprintf(w, "%g,%g,%g,%g,%g\n", pu.X, pu.Y, pv.X, pv.Y, weight)
		})
	case "trajectory":
		writePoints(w, insq.RandomWaypoint(bounds, *steps, *stepLen, *seed))
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}

func writePoints(w *bufio.Writer, pts []insq.Point) {
	for _, p := range pts {
		fmt.Fprintf(w, "%g,%g\n", p.X, p.Y)
	}
}
