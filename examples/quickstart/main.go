// Command quickstart is the smallest complete INSQ program: build an index
// over random data objects, create an INS moving kNN query, move the query
// object along a straight line, and print the kNN set whenever it changes.
package main

import (
	"fmt"
	"log"

	insq "repro"
)

func main() {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))

	// 2000 data objects (think: points of interest).
	objects := insq.UniformPoints(2000, bounds, 42)
	ix, _, err := insq.BuildPlaneIndex(bounds, objects)
	if err != nil {
		log.Fatal(err)
	}

	// A moving 5NN query with prefetch ratio ρ=1.6 (the demo's default).
	q, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		log.Fatal(err)
	}

	// Drive across the data space and report kNN set changes.
	traj, err := insq.LineTrajectory(insq.Pt(50, 500), insq.Pt(950, 500), 500)
	if err != nil {
		log.Fatal(err)
	}
	var last []int
	for i, pos := range traj {
		knn, err := q.Update(pos)
		if err != nil {
			log.Fatal(err)
		}
		if !sameIDs(knn, last) {
			fmt.Printf("step %3d  q=%v  kNN=%v\n", i, pos, knn)
			last = append(last[:0], knn...)
		}
	}

	m := q.Metrics()
	fmt.Printf("\n%d location updates, %d kNN recomputations (%.1f%% of steps), %d objects shipped\n",
		m.Timestamps, m.Recomputations,
		100*float64(m.Recomputations)/float64(m.Timestamps), m.ObjectsShipped)
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
