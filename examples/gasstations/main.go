// Command gasstations reproduces the paper's motivating highway scenario:
// "report the 3 nearest gas stations continuously while one drives on a
// highway". Gas stations are scattered near a west-east highway across a
// larger POI landscape; the driver's MkNN query is maintained with the INS
// algorithm, and the same drive is replayed against the naive
// recompute-every-timestamp processor to show what the safe guarding
// objects save.
package main

import (
	"fmt"
	"log"
	"math/rand"

	insq "repro"
)

func main() {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(10000, 10000))
	rng := rand.New(rand.NewSource(7))

	// 300 gas stations within 300m of the highway (y=5000), plus 5000
	// other POIs spread over the map. The query only cares about the
	// station layer, so the index holds stations only.
	stations := make([]insq.Point, 0, 300)
	for len(stations) < 300 {
		x := rng.Float64() * 10000
		y := 5000 + rng.NormFloat64()*300
		p := insq.Pt(x, y)
		if bounds.Contains(p) {
			stations = append(stations, p)
		}
	}
	ix, _, err := insq.BuildPlaneIndex(bounds, stations)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the highway west to east at 25 m per timestamp.
	drive, err := insq.LineTrajectory(insq.Pt(100, 5000), insq.Pt(9900, 5000), 400)
	if err != nil {
		log.Fatal(err)
	}

	ins, err := insq.NewPlaneQuery(ix, 3, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	changes := 0
	var last []int
	insRep, err := insq.RunPlane(ins, drive, func(step int, pos insq.Point, knn []int) {
		if !equalIDs(knn, last) {
			changes++
			last = append(last[:0], knn...)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	naive, err := insq.NewNaivePlane(ix, 3)
	if err != nil {
		log.Fatal(err)
	}
	naiveRep, err := insq.RunPlane(naive, drive, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("highway drive: %d timestamps, nearest-3 station set changed %d times\n\n",
		insRep.Steps, changes)
	fmt.Println("processor        recomputations   objects shipped   us/step")
	fmt.Printf("INS (rho=1.6)    %-16d %-17d %.2f\n",
		insRep.Counters.Recomputations, insRep.Counters.ObjectsShipped, insRep.PerStepMicros())
	fmt.Printf("naive            %-16d %-17d %.2f\n",
		naiveRep.Counters.Recomputations, naiveRep.Counters.ObjectsShipped, naiveRep.PerStepMicros())
	fmt.Printf("\nINS contacted the server on %.1f%% of timestamps; naive on 100%%.\n",
		100*float64(insRep.Counters.Recomputations)/float64(insRep.Steps))
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
