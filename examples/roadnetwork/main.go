// Command roadnetwork demonstrates Section IV of the paper: the INS
// algorithm on a road network. It generates a Manhattan-style grid
// network, places data objects on a subset of its vertices, builds the
// network Voronoi diagram, and simulates a query object driving a random
// route while its 5NN set is maintained. A demonstration frame (network,
// kNN in green, INS in yellow, Theorem-2 subnetwork highlighted) is
// written to network_frame.svg, mirroring the paper's Figure 3.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	insq "repro"
)

func main() {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(8000, 8000))

	g, err := insq.GridNetwork(40, 40, bounds, 0.25, 0.3, 5)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	sites := rng.Perm(g.NumVertices())[:200]
	d, err := insq.BuildNetworkVoronoi(g, sites)
	if err != nil {
		log.Fatal(err)
	}

	q, err := insq.NewNetworkQuery(d, 5, 1.6)
	if err != nil {
		log.Fatal(err)
	}
	route, err := insq.RandomWalkRoute(g, 820, 30000, 7)
	if err != nil {
		log.Fatal(err)
	}

	var lastPos insq.NetworkPosition
	rep, err := insq.RunNetwork(q, route, 20, func(step int, pos insq.NetworkPosition, knn []int) {
		lastPos = pos
	})
	if err != nil {
		log.Fatal(err)
	}

	sub := q.Subnetwork()
	fmt.Printf("road-network drive: %d timestamps over a %.0f-unit route\n", rep.Steps, route.Length())
	fmt.Printf("network: %d vertices, %d edges; objects: %d\n",
		g.NumVertices(), g.NumEdges(), len(sites))
	fmt.Printf("INS recomputations: %d (%.1f%% of steps)\n",
		rep.Counters.Recomputations, 100*float64(rep.Counters.Recomputations)/float64(rep.Steps))
	fmt.Printf("Theorem-2 validation subnetwork: %d of %d vertices (%.1f%%)\n",
		sub.G.NumVertices(), g.NumVertices(),
		100*float64(sub.G.NumVertices())/float64(g.NumVertices()))

	doc := insq.RenderNetworkFrame(d, q, lastPos, insq.NetworkFrameOptions{ShowSubnetwork: true})
	if err := os.WriteFile("network_frame.svg", []byte(doc), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote network_frame.svg")
}
