// Command dataupdates demonstrates query maintenance under data object
// updates (Section III of the paper): while the query object moves, data
// objects are inserted and removed — new restaurants open, gas stations
// close. The INS processor refreshes its guard sets only when an update
// can actually affect them, and the program cross-checks every reported
// kNN set against a fresh index search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	insq "repro"
)

func main() {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	objects := insq.UniformPoints(1000, bounds, 21)
	ix, ids, err := insq.BuildPlaneIndex(bounds, objects)
	if err != nil {
		log.Fatal(err)
	}
	q, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(22))
	live := append([]int(nil), ids...)
	traj := insq.RandomWaypoint(bounds, 2000, 2, 23)

	inserts, removes, verified := 0, 0, 0
	for step, pos := range traj {
		knn, err := q.Update(pos)
		if err != nil {
			log.Fatal(err)
		}

		// One data update every 50 timestamps.
		if step%50 == 25 {
			if rng.Intn(2) == 0 {
				p := insq.Pt(rng.Float64()*1000, rng.Float64()*1000)
				id, err := q.InsertObject(p)
				if err != nil {
					log.Fatal(err)
				}
				live = append(live, id)
				inserts++
			} else if len(live) > 100 {
				i := rng.Intn(len(live))
				if err := q.RemoveObject(live[i]); err != nil {
					log.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
				removes++
			}
			// The paper requires the result to reflect updates
			// immediately; verify against a from-scratch search.
			knn, err = q.Update(pos)
			if err != nil {
				log.Fatal(err)
			}
			fresh := ix.KNN(pos, 5)
			if !sameSet(knn, fresh) {
				log.Fatalf("step %d: stale result %v, fresh search %v", step, knn, fresh)
			}
			verified++
		}
		_ = knn
	}

	m := q.Metrics()
	fmt.Printf("moved %d steps with %d object inserts and %d removes (index now holds %d objects)\n",
		m.Timestamps, inserts, removes, ix.Len())
	fmt.Printf("all %d post-update results verified against fresh searches\n", verified)
	fmt.Printf("kNN recomputations: %d — update-triggered refreshes only fire when the guard sets are affected\n",
		m.Recomputations)
}

func sameSet(a, b []int) bool {
	as, bs := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
