// Command server walks through the concurrent MkNN serving engine — the
// online counterpart of examples/fleet. It starts an in-process engine
// (the same subsystem cmd/insqd fronts with HTTP), registers a block of
// moving-client sessions, drives them with batched location updates while
// the object set churns underneath, and prints the aggregated serving
// stats: INS cost counters, per-update latency quantiles, and throughput.
//
// For the networked version of this flow, run `insqd` and point
// `loadgen -addr http://localhost:8080` at it.
package main

import (
	"fmt"
	"log"

	insq "repro"
)

func main() {
	const (
		objects  = 20000
		sessions = 500
		shards   = 8
		steps    = 50
		k        = 5
		rho      = 1.6
	)
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(10000, 10000))

	// The engine pins each session to a shard for parallel serving; all
	// shards read one shared, epoch-versioned index snapshot, so memory
	// stays O(objects) no matter how many shards run.
	e, err := insq.NewEngine(insq.EngineConfig{
		Shards:  shards,
		Bounds:  bounds,
		Objects: insq.UniformPoints(objects, bounds, 42),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer e.Close()

	sids := make([]insq.SessionID, sessions)
	trajs := make([][]insq.Point, sessions)
	for i := range sids {
		if sids[i], err = e.CreateSession(k, rho); err != nil {
			log.Fatal(err)
		}
		trajs[i] = insq.RandomWaypoint(bounds, steps, 8, int64(i))
	}

	// One batched request per timestamp, carrying every client's location
	// update; the engine fans it out to the shards and gathers results.
	// Every tenth step also mutates the object set: affected sessions are
	// invalidated and recompute lazily, the rest never notice.
	var churned []int
	for s := 0; s < steps; s++ {
		batch := make([]insq.LocationUpdate, sessions)
		for i := range sids {
			batch[i] = insq.LocationUpdate{Session: sids[i], Pos: trajs[i][s]}
		}
		results, err := e.UpdateBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				log.Fatalf("session %d: %v", r.Session, r.Err)
			}
		}
		if s%10 == 5 {
			id, err := e.InsertObject(insq.Pt(float64(s)*37, float64(s)*91))
			if err != nil {
				log.Fatal(err)
			}
			churned = append(churned, id)
		}
		if len(churned) > 2 {
			if err := e.RemoveObject(churned[0]); err != nil {
				log.Fatal(err)
			}
			churned = churned[1:]
		}
	}

	st, err := e.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served %d sessions x %d steps on %d shards\n", sessions, steps, shards)
	fmt.Printf("location updates:  %d (%.0f/sec)\n", st.Updates, st.UpdatesPerSec)
	fmt.Printf("data updates:      %d epochs (%d live index snapshots)\n", st.Epoch, st.Snapshots)
	fmt.Printf("update latency:    %v\n", st.Latency)
	fmt.Printf("recomputations:    %d (%.2f%% of updates; naive recomputes all)\n",
		st.Counters.Recomputations,
		100*float64(st.Counters.Recomputations)/float64(st.Counters.Timestamps))
	fmt.Printf("objects shipped:   %d (%.2f per update)\n",
		st.Counters.ObjectsShipped,
		float64(st.Counters.ObjectsShipped)/float64(st.Counters.Timestamps))
}
