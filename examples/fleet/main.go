// Command fleet simulates an LBS server maintaining many concurrent
// moving kNN queries — the deployment the paper motivates ("critical in
// LBS"). It shards the data space across worker-local indexes, runs 100
// moving 5NN queries in parallel, and aggregates the communication
// savings of the INS algorithm across the fleet.
package main

import (
	"fmt"
	"log"
	"runtime"

	insq "repro"
)

func main() {
	const (
		shards   = 4
		perShard = 25
		objects  = 5000
		steps    = 1000
		k        = 5
		rho      = 1.6
	)
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(10000, 10000))

	var queries []insq.FleetQuery
	for s := 0; s < shards; s++ {
		ix, _, err := insq.BuildPlaneIndex(bounds, insq.UniformPoints(objects, bounds, int64(s+1)))
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < perShard; j++ {
			q, err := insq.NewPlaneQuery(ix, k, rho)
			if err != nil {
				log.Fatal(err)
			}
			queries = append(queries, insq.FleetQuery{
				Proc:  q,
				Traj:  insq.RandomWaypoint(bounds, steps, 5, int64(s*1000+j)),
				Shard: s,
			})
		}
	}

	workers := runtime.GOMAXPROCS(0)
	reports, err := insq.RunPlaneFleet(queries, workers)
	if err != nil {
		log.Fatal(err)
	}

	var totalSteps, totalRecomps, totalShipped int
	for _, rep := range reports {
		totalSteps += rep.Steps
		totalRecomps += rep.Counters.Recomputations
		totalShipped += rep.Counters.ObjectsShipped
	}
	fmt.Printf("fleet: %d concurrent queries x %d steps on %d workers\n",
		len(queries), steps, workers)
	fmt.Printf("location updates processed: %d\n", totalSteps)
	fmt.Printf("server recomputations:      %d (%.2f%% of updates; naive would be 100%%)\n",
		totalRecomps, 100*float64(totalRecomps)/float64(totalSteps))
	fmt.Printf("objects shipped:            %d (%.1f per update; naive would ship %d)\n",
		totalShipped, float64(totalShipped)/float64(totalSteps), k)
}
