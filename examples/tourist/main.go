// Command tourist reproduces the paper's second motivating scenario: "the 5
// nearest points of interest continuously while a tourist is walking around
// a city". POIs cluster around attractions (Gaussian mixture); the tourist
// follows a random-waypoint walk. The program maintains the 5NN set with
// the INS algorithm and writes demonstration frames — the same view as the
// paper's Figure 4, with Voronoi cells, the order-k cell and the two
// validation circles — as SVG files into ./frames.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	insq "repro"
)

func main() {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))

	pois, err := insq.ClusteredPoints(400, 8, 60, bounds, 11)
	if err != nil {
		log.Fatal(err)
	}
	ix, _, err := insq.BuildPlaneIndex(bounds, pois)
	if err != nil {
		log.Fatal(err)
	}
	q, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		log.Fatal(err)
	}

	walk := insq.RandomWaypoint(bounds, 600, 2.5, 3)

	outDir := "frames"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	frames := 0
	rep, err := insq.RunPlane(q, walk, func(step int, pos insq.Point, knn []int) {
		if step%100 != 0 {
			return
		}
		doc, err := insq.RenderPlaneFrame(ix, q, pos, insq.PlaneFrameOptions{
			ShowVoronoiCells: true,
			ShowOrderKCell:   true,
			ShowCircles:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := filepath.Join(outDir, fmt.Sprintf("walk_%04d.svg", step))
		if err := os.WriteFile(name, []byte(doc), 0o644); err != nil {
			log.Fatal(err)
		}
		frames++
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tourist walk: %d steps, %d demonstration frames written to %s/\n",
		rep.Steps, frames, outDir)
	fmt.Printf("kNN recomputations: %d (%.1f%% of steps), validation cost: %d distance computations\n",
		rep.Counters.Recomputations,
		100*float64(rep.Counters.Recomputations)/float64(rep.Steps),
		rep.Counters.DistanceCalcs)
}
