// Package insq is a Go reproduction of "INSQ: An Influential Neighbor Set
// Based Moving kNN Query Processing System" (Li, Gu, Qi, Yu, Zhang, Deng —
// ICDE 2016), including the underlying Influential Neighbor Set (INS)
// algorithm for moving k-nearest-neighbor (MkNN) queries in both 2D
// Euclidean space and road networks, the safe-region baselines it is
// evaluated against, and the demonstration and experiment tooling.
//
// The core idea: rather than recomputing the kNN set at every location
// update, or maintaining an explicit safe region, the INS algorithm keeps a
// small set of safe guarding objects — the order-1 Voronoi neighbors of the
// current kNN members. The kNN set remains provably valid while every kNN
// member is closer to the query than every guarding object, a check that is
// linear in k; and because the guarding objects implicitly delimit the
// order-k Voronoi cell (the largest possible safe region), recomputations
// are as infrequent as theoretically possible.
//
// # Quick start (2D Euclidean)
//
//	objects := insq.UniformPoints(10000, insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000)), 42)
//	ix, _, err := insq.BuildPlaneIndex(bounds, objects)
//	q, err := insq.NewPlaneQuery(ix, 5, 1.6) // k=5, prefetch ratio ρ=1.6
//	for _, pos := range insq.RandomWaypoint(bounds, 1000, 2.0, 7) {
//	    knn, err := q.Update(pos) // ids of the 5 nearest objects
//	    ...
//	}
//
// # Road networks
//
//	g, err := insq.GridNetwork(64, 64, bounds, 0.2, 0.3, 1)
//	d, err := insq.BuildNetworkVoronoi(g, siteVertexIDs)
//	q, err := insq.NewNetworkQuery(d, 5, 1.6)
//	route, err := insq.RandomWalkRoute(g, 0, 50000, 2)
//	for dist := 0.0; dist <= route.Length(); dist += 5 {
//	    knn, err := q.Update(route.PositionAt(dist))
//	    ...
//	}
//
// # Serving
//
// Beyond the single-query processors, the package exposes a concurrent
// serving engine (session-sharded, safe for concurrent use) that maintains
// thousands of live MkNN sessions with batched location updates and online
// data updates:
//
//	e, err := insq.NewEngine(insq.EngineConfig{Shards: 8, Bounds: bounds, Objects: objects})
//	sid, err := e.CreateSession(5, 1.6)
//	results, err := e.UpdateBatch([]insq.LocationUpdate{{Session: sid, Pos: pos}})
//
// cmd/insqd fronts the engine with an HTTP/JSON API and cmd/loadgen drives
// it with thousands of synthetic moving clients.
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction results.
package insq
