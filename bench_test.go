// Benchmarks regenerating the experiment tables of EXPERIMENTS.md. Each
// benchmark drives one experiment configuration; one benchmark op is one
// query-object location update (timestamp), so ns/op is the per-step
// processing cost the paper's efficiency claims are about. Recomputation
// (communication) frequency and shipped-object volume are attached as
// custom metrics (recomp/step, shipped/step).
//
// The tables themselves (full sweeps with aligned rows) are produced by
// cmd/bench; these benchmarks pin the same code paths into `go test
// -bench` so regressions show up in standard tooling.
package insq_test

import (
	"math/rand"
	"testing"

	insq "repro"
	"repro/internal/experiments"
	"repro/internal/voronoi"
)

var benchBounds = insq.NewRect(insq.Pt(0, 0), insq.Pt(10000, 10000))

// planeBench drives a plane processor along a random-waypoint trajectory,
// one b.N iteration per location update.
func planeBench(b *testing.B, mk func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error), n int) {
	b.Helper()
	ix, _, err := insq.BuildPlaneIndex(benchBounds, insq.UniformPoints(n, benchBounds, 7))
	if err != nil {
		b.Fatal(err)
	}
	p, err := mk(ix)
	if err != nil {
		b.Fatal(err)
	}
	traj := insq.RandomWaypoint(benchBounds, 8192, 8, 9)
	before := *p.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Update(traj[i%len(traj)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := *p.Metrics()
	steps := float64(b.N)
	b.ReportMetric(float64(after.Recomputations-before.Recomputations)/steps, "recomp/step")
	b.ReportMetric(float64(after.ObjectsShipped-before.ObjectsShipped)/steps, "shipped/step")
}

// BenchmarkE1Fig1 regenerates the Figure 1 computation: 3NN, INS and MIS
// of the fixed 12-object configuration.
func BenchmarkE1Fig1(b *testing.B) {
	d, _, err := voronoi.Build(experiments.Fig1Bounds, experiments.Fig1Points)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn := d.KNN(experiments.Fig1Q, 3)
		ins, err := d.INS(knn)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.MIS(knn, ins); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fig2 regenerates the Figure 2 computation: network kNN and
// INS on a small road network.
func BenchmarkE2Fig2(b *testing.B) {
	g, err := insq.RandomPlanarNetwork(40, benchBounds, 0.5, 0.2, 102)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	sites := rng.Perm(40)[:12]
	d, err := insq.BuildNetworkVoronoi(g, sites)
	if err != nil {
		b.Fatal(err)
	}
	pos := insq.VertexPosition(sites[4])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knn := d.KNN(pos, 2)
		if _, err := d.INS(knn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Fig4 regenerates the Figure 4 scenario: k=5, ρ=1.6 query
// maintenance on a 200-object space (dense invalidations).
func BenchmarkE3Fig4(b *testing.B) {
	ix, _, err := insq.BuildPlaneIndex(experiments.Fig1Bounds,
		insq.UniformPoints(200, experiments.Fig1Bounds, 14))
	if err != nil {
		b.Fatal(err)
	}
	q, err := insq.NewPlaneQuery(ix, 5, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	traj := insq.RandomWaypoint(experiments.Fig1Bounds, 8192, 0.5, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Update(traj[i%len(traj)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4E5 sweeps k for every processor: per-step cost (ns/op, the E5
// series) and recomputation/communication frequency (custom metrics, the
// E4 series). The exact order-k cell baseline runs at k ≤ 8; above that
// its construction is the story, not a benchmark.
func BenchmarkE4E5(b *testing.B) {
	const n = 10000
	for _, k := range []int{1, 4, 8, 16} {
		k := k
		b.Run(rowName("k", k)+"/ins", func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				return insq.NewPlaneQuery(ix, k, 1.6)
			}, n)
		})
		b.Run(rowName("k", k)+"/vstar", func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				return insq.NewVStarPlane(ix, k, 4)
			}, n)
		})
		if k <= 8 {
			b.Run(rowName("k", k)+"/orderk-cell", func(b *testing.B) {
				planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
					return insq.NewOrderKCellPlane(ix, k, false)
				}, n)
			})
		}
		b.Run(rowName("k", k)+"/naive", func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				return insq.NewNaivePlane(ix, k)
			}, n)
		})
	}
}

// BenchmarkE6PrefetchRatio sweeps ρ at k=8: the communication /
// recomputation trade-off knob of Section III.
func BenchmarkE6PrefetchRatio(b *testing.B) {
	for _, rho := range []float64{1.0, 1.2, 1.6, 2.0, 3.0} {
		rho := rho
		b.Run(rowNameF("rho", rho), func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				return insq.NewPlaneQuery(ix, 8, rho)
			}, 10000)
		})
	}
}

// BenchmarkE7DatasetSize sweeps n at k=8 for the INS processor.
func BenchmarkE7DatasetSize(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		n := n
		b.Run(rowName("n", n), func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				return insq.NewPlaneQuery(ix, 8, 1.6)
			}, n)
		})
	}
}

// networkBench drives a network processor along a random-walk route.
func networkBench(b *testing.B, mk func(d *insq.NetworkVoronoi) (insq.NetworkProcessor, error)) {
	b.Helper()
	g, err := insq.GridNetwork(64, 64, benchBounds, 0.25, 0.3, 8)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(88))
	sites := rng.Perm(g.NumVertices())[:2000]
	d, err := insq.BuildNetworkVoronoi(g, sites)
	if err != nil {
		b.Fatal(err)
	}
	p, err := mk(d)
	if err != nil {
		b.Fatal(err)
	}
	route, err := insq.RandomWalkRoute(g, 0, 1e7, 89)
	if err != nil {
		b.Fatal(err)
	}
	const stepLen = 40
	before := *p.Metrics()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist := float64(i) * stepLen
		for dist > route.Length() {
			dist -= route.Length()
		}
		if _, err := p.Update(route.PositionAt(dist)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := *p.Metrics()
	steps := float64(b.N)
	b.ReportMetric(float64(after.Recomputations-before.Recomputations)/steps, "recomp/step")
	b.ReportMetric(float64(after.EdgeRelaxations-before.EdgeRelaxations)/steps, "relax/step")
}

// BenchmarkE8Network sweeps k on the 64×64 grid network (2000 objects).
func BenchmarkE8Network(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		k := k
		b.Run(rowName("k", k)+"/ins-network", func(b *testing.B) {
			networkBench(b, func(d *insq.NetworkVoronoi) (insq.NetworkProcessor, error) {
				return insq.NewNetworkQuery(d, k, 1.6)
			})
		})
		b.Run(rowName("k", k)+"/naive-network", func(b *testing.B) {
			networkBench(b, func(d *insq.NetworkVoronoi) (insq.NetworkProcessor, error) {
				return insq.NewNaiveNetwork(d, k)
			})
		})
	}
}

// BenchmarkE9Theorem2 isolates the subnetwork-vs-full-network validation
// cost: identical INS logic, different validation search space.
func BenchmarkE9Theorem2(b *testing.B) {
	b.Run("subnetwork", func(b *testing.B) {
		networkBench(b, func(d *insq.NetworkVoronoi) (insq.NetworkProcessor, error) {
			return insq.NewNetworkQuery(d, 8, 1.6)
		})
	})
	b.Run("full-network", func(b *testing.B) {
		networkBench(b, func(d *insq.NetworkVoronoi) (insq.NetworkProcessor, error) {
			return insq.NewFullNetworkINS(d, 8, 1.6)
		})
	})
}

// BenchmarkE11Updates measures query maintenance with one data-object
// insert or delete every 20 steps.
func BenchmarkE11Updates(b *testing.B) {
	ix, _, err := insq.BuildPlaneIndex(benchBounds, insq.UniformPoints(10000, benchBounds, 11))
	if err != nil {
		b.Fatal(err)
	}
	q, err := insq.NewPlaneQuery(ix, 8, 1.6)
	if err != nil {
		b.Fatal(err)
	}
	traj := insq.RandomWaypoint(benchBounds, 8192, 8, 111)
	rng := rand.New(rand.NewSource(112))
	var inserted []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Update(traj[i%len(traj)]); err != nil {
			b.Fatal(err)
		}
		if i%20 == 10 {
			if rng.Intn(2) == 0 || len(inserted) == 0 {
				id, err := q.InsertObject(insq.Pt(rng.Float64()*10000, rng.Float64()*10000))
				if err != nil {
					b.Fatal(err)
				}
				inserted = append(inserted, id)
			} else {
				j := rng.Intn(len(inserted))
				if err := q.RemoveObject(inserted[j]); err != nil {
					b.Fatal(err)
				}
				inserted = append(inserted[:j], inserted[j+1:]...)
			}
		}
	}
}

// BenchmarkE12Precompute measures the order-k Voronoi diagram
// precomputation (reference [2]) whose cost the paper argues is
// impractical; one op is one full enumeration.
func BenchmarkE12Precompute(b *testing.B) {
	bounds := insq.NewRect(insq.Pt(0, 0), insq.Pt(1000, 1000))
	ix, _, err := insq.BuildPlaneIndex(bounds, insq.UniformPoints(500, bounds, 12))
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		k := k
		b.Run(rowName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q, err := insq.NewPrecomputedOrderKPlane(ix, k)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(q.NumCells), "cells")
			}
		})
	}
}

// BenchmarkAblationRerank measures what the local re-rank path saves.
func BenchmarkAblationRerank(b *testing.B) {
	for _, disable := range []bool{false, true} {
		disable := disable
		name := "with-rerank"
		if disable {
			name = "without-rerank"
		}
		b.Run(name, func(b *testing.B) {
			planeBench(b, func(ix *insq.PlaneIndex) (insq.PlaneProcessor, error) {
				q, err := insq.NewPlaneQuery(ix, 8, 1.6)
				if err != nil {
					return nil, err
				}
				q.SetDisableLocalRerank(disable)
				return q, nil
			}, 10000)
		})
	}
}

// BenchmarkAblationVorTreeKNN compares the VoR-tree kNN (one R-tree
// descent + Voronoi expansion) against plain best-first R-tree kNN.
func BenchmarkAblationVorTreeKNN(b *testing.B) {
	ix, _, err := insq.BuildPlaneIndex(benchBounds, insq.UniformPoints(50000, benchBounds, 22))
	if err != nil {
		b.Fatal(err)
	}
	qs := insq.RandomWaypoint(benchBounds, 1024, 50, 122)
	b.Run("vortree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.KNN(qs[i%len(qs)], 13)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Tree().KNN(qs[i%len(qs)], 13)
		}
	})
}

func rowName(k string, v int) string {
	return k + "=" + itoa(v)
}

func rowNameF(k string, v float64) string {
	switch v {
	case 1.0:
		return k + "=1.0"
	case 1.2:
		return k + "=1.2"
	case 1.6:
		return k + "=1.6"
	case 2.0:
		return k + "=2.0"
	case 3.0:
		return k + "=3.0"
	}
	return k
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
